//! The recovery plane of the replication engine: write-ahead logs,
//! crash-restart, hinted handoff, and waiter hygiene.
//!
//! Three mechanisms, all driven off the simulation's [`FaultPlan`] by one
//! per-store monitor task (spawned in [`Engine::new`], parked on the plan's
//! change notifier between window edges — no polling). Because the monitor
//! is generic over the engine's [`Substrate`], *both* store families get it:
//! KV stores and queue brokers recover identically.
//!
//! - **Crash-restart** ([`antipode_sim::fault::FaultKind::ReplicaCrash`]):
//!   on window entry the replica's volatile state (memtable, visibility
//!   waiters, in-flight sends it originated, hints it queued) is lost; on the
//!   heal edge the replica restarts and deterministically replays its
//!   write-ahead log. With the WAL disabled the replica restarts empty and
//!   relies entirely on anti-entropy repair ([`crate::repair`]).
//! - **Hinted handoff**: a send suppressed by a partition, outage, stall,
//!   pause, or crashed destination parks as a [`Hint`] at its origin; the
//!   monitor flushes hints the moment the fault plan says the path is
//!   healthy again. Origin-crash drops that origin's queued hints — exactly
//!   the writes anti-entropy repair exists to back-fill.
//! - **Waiter hygiene**: visibility waiters subscribed at a replica that
//!   goes dark are cancelled with [`StoreError::Unavailable`] (instead of
//!   leaking forever). The KV family surfaces the cancellation so barrier
//!   retry policies re-arm; the queue family silently resubscribes (queue
//!   waits never error on faults).
//!
//! A fourth mechanism closes the loop with the storage-integrity plane
//! ([`crate::wal`], [`crate::repair`]): the monitor also applies scheduled
//! **disk faults** ([`antipode_sim::fault::FaultKind::DiskFault`]) to the
//! durable log at their window edges — torn tail writes, bit flips —
//! and crash-restart replay *verifies* every record's checksum. A torn
//! tail truncates cleanly (bounded, known loss); a mid-log checksum
//! mismatch quarantines the replica ([`crate::engine::ReplicaHealth`])
//! until anti-entropy back-fills it.
//!
//! Everything is deterministic: the monitor wakes only at scheduled window
//! edges and imperative plan changes, hint queues preserve push order, and
//! WAL replay is a pure fold over the verified prefix of the log.

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use antipode_sim::fault::{DiskFaultKind, FaultPlan};
use antipode_sim::{timeout, Region, SimTime};
use bytes::Bytes;

use crate::engine::{Engine, Record, ReplicaHealth};
use crate::substrate::{StoreError, Substrate};
use crate::wal::WalFaultKind;

/// Per-store recovery knobs. Defaults model a production store: durable WAL
/// and hinted handoff both on. [`RecoveryConfig::disabled`] is the ablation
/// in which suppressed sends are dropped outright and a crashed replica
/// restarts empty — the configuration the convergence-under-chaos property
/// tests demonstrate to be *not* eventually consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Queue suppressed sends as hints and flush them when the path heals.
    /// Off: suppressed sends are silently dropped.
    pub hinted_handoff: bool,
    /// Append every apply to a per-replica write-ahead log and replay it at
    /// crash-restart. Off: a crash loses the replica's entire dataset.
    pub wal: bool,
    /// Verify each WAL record's CRC32C during replay and scrub sweeps. Off
    /// is the integrity ablation: replay trusts the declared frame lengths
    /// and silently rehydrates bit-rotted values into the memtable — the
    /// behavior `tests/integrity_properties.rs` demonstrates the checksums
    /// to prevent.
    pub verify_checksums: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            hinted_handoff: true,
            wal: true,
            verify_checksums: true,
        }
    }
}

impl RecoveryConfig {
    /// No WAL, no handoff: the no-recovery ablation.
    pub fn disabled() -> Self {
        RecoveryConfig {
            hinted_handoff: false,
            wal: false,
            verify_checksums: false,
        }
    }
}

/// One durable write-ahead-log record: an apply that changed the memtable.
/// The key is a shared `Rc<str>` — one allocation per commit, refcount
/// bumps everywhere else (WAL, index, memtable, hints, batch entries).
#[derive(Clone, Debug)]
pub struct WalEntry {
    /// The written key.
    pub key: Rc<str>,
    /// The version applied.
    pub version: u64,
    /// The stored bytes.
    pub bytes: Bytes,
    /// When the apply originally became visible (preserved across replay so
    /// post-restart timestamps keep their happens-before ordering).
    pub visible_at: SimTime,
    /// When the write committed at its origin (preserved so replayed queue
    /// messages keep their publish timestamps).
    pub committed_at: SimTime,
}

/// A send parked at its origin because a fault suppressed the path to
/// `dest`; flushed when the fault plan says the path is healthy.
#[derive(Clone, Debug)]
pub struct Hint {
    /// The region that committed the write (where the hint is stored).
    pub origin: Region,
    /// The replica the send was addressed to.
    pub dest: Region,
    /// The written key.
    pub key: Rc<str>,
    /// The version to apply.
    pub version: u64,
    /// The stored bytes.
    pub bytes: Bytes,
    /// When the write committed at its origin.
    pub committed_at: SimTime,
}

/// Spawns the store's recovery monitor: one task that wakes at every fault
/// transition (and imperative change) to run crash/restart edges, cancel
/// waiters of dark replicas, and flush healed hints. Parks without a timer
/// when the plan has no future transitions, so simulations still quiesce.
pub(crate) fn spawn_monitor<S: Substrate>(engine: &Engine<S>) {
    let engine = engine.clone();
    let sim = engine.sim().clone();
    let faults: FaultPlan = engine.faults().clone();
    let mut dark: BTreeMap<Region, bool> = BTreeMap::new();
    let mut crashed: BTreeMap<Region, bool> = BTreeMap::new();
    // Disk-fault windows already applied to a replica's log, keyed by the
    // plan's window index — each scheduled corruption strikes exactly once.
    let mut injected: BTreeSet<(Region, usize)> = BTreeSet::new();
    for &r in engine.regions() {
        dark.insert(r, false);
        crashed.insert(r, false);
    }
    sim.clone().spawn(async move {
        loop {
            let notified = faults.on_change();
            let now = sim.now();
            engine.recovery_tick(now, &mut dark, &mut crashed, &mut injected);
            match faults.next_transition_after(now) {
                Some(t) => {
                    let _ = timeout(&sim, t.since(now), notified).await;
                }
                None => notified.await,
            }
        }
    });
}

impl<S: Substrate> Engine<S> {
    /// One monitor pass at `now`: process crash/restart and dark/lit edges
    /// per replica, then flush any hints whose paths healed.
    fn recovery_tick(
        &self,
        now: SimTime,
        dark: &mut BTreeMap<Region, bool>,
        crashed: &mut BTreeMap<Region, bool>,
        injected: &mut BTreeSet<(Region, usize)>,
    ) {
        let regions = self.regions().to_vec();
        for region in regions {
            self.inject_disk_faults(now, region, injected);
            let is_crashed = self
                .inner
                .faults
                .replica_crashed(now, &self.inner.name, region);
            let is_dark = is_crashed
                || self.inner.substrate.op_blocked(
                    &self.inner.faults,
                    now,
                    &self.inner.name,
                    region,
                );
            let was_crashed = crashed.insert(region, is_crashed).unwrap_or(false);
            let was_dark = dark.insert(region, is_dark).unwrap_or(false);
            if is_crashed && !was_crashed {
                self.crash_replica(region);
            }
            if !is_crashed && was_crashed {
                self.restart_replica(region);
            }
            if is_dark && !was_dark {
                self.cancel_waiters(region);
            }
        }
        self.flush_hints(now);
    }

    /// Applies any newly active disk-fault windows to a replica's durable
    /// log. The corruption is *latent*: memtable and reads are untouched
    /// until crash-restart replay or a scrub sweep re-reads the bytes and
    /// discovers the damage — exactly the silent-until-read failure mode of
    /// real storage. `LostAppend` windows have no edge action; they are
    /// consulted continuously at the append sites in [`crate::engine`].
    fn inject_disk_faults(
        &self,
        now: SimTime,
        region: Region,
        injected: &mut BTreeSet<(Region, usize)>,
    ) {
        for (ix, fault) in self.inner.faults.disk_faults(now, &self.inner.name, region) {
            if !injected.insert((region, ix)) {
                continue;
            }
            let mut replicas = self.inner.replicas.borrow_mut();
            let Some(state) = replicas.get_mut(&region) else {
                continue;
            };
            match fault {
                DiskFaultKind::TornWrite => {
                    state.wal.tear_tail();
                }
                DiskFaultKind::BitFlip { offset_seed } => {
                    state.wal.flip_byte(offset_seed);
                }
                DiskFaultKind::LostAppend => {}
            }
        }
    }

    /// Crash entry: volatile state dies with the process. The memtable is
    /// wiped (the WAL, being durable, survives), pending visibility waiters
    /// are cancelled, hints queued at this origin are lost, and the epoch
    /// bump aborts in-flight sends this replica originated.
    fn crash_replica(&self, region: Region) {
        let cancelled = {
            let mut replicas = self.inner.replicas.borrow_mut();
            let Some(state) = replicas.get_mut(&region) else {
                return;
            };
            state.data.clear();
            state.epoch += 1;
            std::mem::take(&mut state.waiters)
        };
        for w in cancelled {
            let _ = w.tx.send(Err(StoreError::Unavailable {
                store: self.inner.name.clone(),
                region,
            }));
        }
        self.inner.hints.borrow_mut().retain(|h| h.origin != region);
    }

    /// Restart at the heal edge: *verify* the write-ahead log and
    /// deterministically replay its verified prefix into the fresh memtable
    /// (a no-op fold when the WAL is disabled — the replica restarts empty
    /// and waits for anti-entropy repair).
    ///
    /// Verification gives the replay an integrity policy:
    /// - a torn tail frame ([`WalFaultKind::TornFrame`]) is an interrupted
    ///   final append — the log truncates to its verified prefix and the
    ///   replica restarts `Healthy` with a bounded, known loss;
    /// - a mid-log checksum mismatch ([`WalFaultKind::ChecksumMismatch`])
    ///   means the replica cannot bound what else rotted — the log still
    ///   truncates (so future appends extend a clean log), but the replica
    ///   restarts [`ReplicaHealth::Tainted`]: reads refuse with
    ///   [`StoreError::IntegrityFault`] until anti-entropy back-fills it and
    ///   it rejoins with a bumped epoch.
    ///
    /// The WAL dedupe index is rebuilt from the *surviving* records, never
    /// carried over: a stale index entry for a truncated frame would make
    /// the deferred-apply families' dedupe append silently skip re-logging
    /// a version the log no longer holds — a second crash would then lose
    /// it permanently.
    ///
    /// Replay restores state without invoking the substrate's apply
    /// reaction: observers were already notified by the original applies.
    /// Waiters the replay satisfies *are* woken — queue waiters resubscribe
    /// during the crash window, and for a publish that was durably logged
    /// but never delivered (its in-flight sends died with the origin), the
    /// replayed record is the only apply they will ever see.
    fn restart_replica(&self, region: Region) {
        let verify = self.inner.recovery.get().verify_checksums;
        let (woken, tainted) = {
            let mut replicas = self.inner.replicas.borrow_mut();
            let Some(state) = replicas.get_mut(&region) else {
                return;
            };
            let scan = state.wal.scan(verify);
            let tainted = match scan.fault.map(|f| f.kind) {
                Some(WalFaultKind::ChecksumMismatch) => true,
                Some(WalFaultKind::TornFrame) | None => false,
            };
            if scan.fault.is_some() {
                state.wal.truncate_to(&scan);
            }
            state.rebuild_wal_index(scan.entries.iter());
            for entry in &scan.entries {
                let newer_exists = state
                    .data
                    .get(&entry.key)
                    .map(|v| v.version >= entry.version)
                    .unwrap_or(false);
                if !newer_exists {
                    state.data.insert(
                        Rc::clone(&entry.key),
                        Record {
                            version: entry.version,
                            bytes: entry.bytes.clone(),
                            visible_at: entry.visible_at,
                            committed_at: entry.committed_at,
                        },
                    );
                }
            }
            if tainted {
                // Quarantine sticks until the repair plane rejoins the
                // replica — a clean-looking log after truncation must not
                // clear it.
                state.health = ReplicaHealth::Tainted;
            }
            let mut woken = Vec::new();
            if tainted {
                // A quarantined replica serves nothing — even waiters whose
                // versions the replayed prefix holds. Drain them all.
                woken.extend(std::mem::take(&mut state.waiters).into_iter().map(|w| w.tx));
            } else {
                let mut i = 0;
                while i < state.waiters.len() {
                    let satisfied = state
                        .data
                        .get(&state.waiters[i].key)
                        .map(|v| v.version >= state.waiters[i].version)
                        .unwrap_or(false);
                    if satisfied {
                        // lint: allow(scheduler-bypass, replaying the WAL completes store
                        // visibility waiters — bookkeeping, not a run-next decision)
                        woken.push(state.waiters.swap_remove(i).tx);
                    } else {
                        i += 1;
                    }
                }
            }
            (woken, tainted)
        };
        for tx in woken {
            let _ = tx.send(if tainted {
                Err(StoreError::IntegrityFault {
                    store: self.inner.name.clone(),
                    region,
                })
            } else {
                Ok(())
            });
        }
    }

    /// Cancels every visibility waiter at a replica that went dark. KV
    /// subscribers surface [`StoreError::Unavailable`]; queue subscribers
    /// silently resubscribe (see [`Engine::wait_visible`]).
    fn cancel_waiters(&self, region: Region) {
        let cancelled = {
            let mut replicas = self.inner.replicas.borrow_mut();
            match replicas.get_mut(&region) {
                Some(state) => std::mem::take(&mut state.waiters),
                None => return,
            }
        };
        for w in cancelled {
            let _ = w.tx.send(Err(StoreError::Unavailable {
                store: self.inner.name.clone(),
                region,
            }));
        }
    }

    /// Flushes every queued hint whose origin→dest path is healthy at `now`,
    /// in queue order. Hints whose paths are still faulted stay queued.
    fn flush_hints(&self, now: SimTime) {
        if self.inner.hints.borrow().is_empty() {
            return;
        }
        let ready: Vec<Hint> = {
            let mut hints = self.inner.hints.borrow_mut();
            let mut ready = Vec::new();
            hints.retain(|h| {
                let suppressed = self.inner.substrate.send_suppressed(
                    &self.inner.faults,
                    now,
                    &self.inner.name,
                    h.origin,
                    h.dest,
                ) || self.inner.faults.replica_crashed(
                    now,
                    &self.inner.name,
                    h.dest,
                ) || self.inner.faults.replica_crashed(
                    now,
                    &self.inner.name,
                    h.origin,
                );
                if suppressed {
                    true
                } else {
                    ready.push(h.clone());
                    false
                }
            });
            ready
        };
        for h in ready {
            self.apply(h.dest, &h.key, h.version, h.bytes, h.committed_at);
        }
    }

    /// Number of queued hinted-handoff entries (diagnostics).
    pub(crate) fn pending_hints(&self) -> usize {
        self.inner.hints.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::dist::Dist;
    use antipode_sim::fault::FaultKind;
    use antipode_sim::net::regions::{EU, SG, US};
    use antipode_sim::net::Network;
    use antipode_sim::{Sim, SimTime};

    use crate::queue::{QueueProfile, QueueStore};
    use crate::replica::{KvProfile, KvStore};

    fn fast_profile() -> KvProfile {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        }
    }

    fn setup(seed: u64) -> (Sim, KvStore) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "db", &[EU, US, SG], fast_profile());
        (sim, store)
    }

    #[test]
    fn crash_wipes_volatile_state_and_wal_replay_restores_it() {
        let (sim, store) = setup(11);
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(US, "k", Bytes::from_static(b"x")).await.unwrap();
            assert!(s.is_visible(US, "k", v));
            assert_eq!(s.wal_len(US), 1);
            v
        });
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        // Mid-window: the memtable is gone, operations are rejected.
        sim.run_until(SimTime::from_secs(6));
        assert!(store.get_sync(US, "k").is_none(), "crash wipes volatile");
        let s = store.clone();
        sim.block_on(async move {
            assert!(matches!(
                s.put(US, "k2", Bytes::new()).await.unwrap_err(),
                StoreError::Unavailable { .. }
            ));
        });
        // Post-restart: WAL replay restored the data at the heal edge.
        sim.run_until(SimTime::from_secs(9));
        let got = store.get_sync(US, "k").expect("WAL replay restores");
        assert_eq!(got.bytes, Bytes::from_static(b"x"));
    }

    #[test]
    fn crash_without_wal_restarts_empty() {
        let (sim, store) = setup(12);
        store.set_recovery(RecoveryConfig {
            wal: false,
            ..RecoveryConfig::default()
        });
        let s = store.clone();
        sim.block_on(async move {
            s.put(US, "k", Bytes::from_static(b"x")).await.unwrap();
        });
        assert_eq!(store.wal_len(US), 0);
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        sim.run_until(SimTime::from_secs(9));
        assert!(
            store.get_sync(US, "k").is_none(),
            "no WAL: the replica restarts empty until repair back-fills it"
        );
    }

    #[test]
    fn torn_tail_truncates_cleanly_and_replay_restores_the_prefix() {
        let (sim, store) = setup(18);
        let s = store.clone();
        sim.block_on(async move {
            let v1 = s.put(US, "k1", Bytes::from_static(b"one")).await.unwrap();
            let v2 = s.put(US, "k2", Bytes::from_static(b"two")).await.unwrap();
            (v1, v2)
        });
        assert_eq!(store.wal_len(US), 2);
        // The torn write strikes at 4s, then the replica crash-restarts.
        sim.faults().schedule(
            SimTime::from_secs(4),
            SimTime::from_secs(5),
            FaultKind::DiskFault {
                store: "db".into(),
                region: US,
                fault: DiskFaultKind::TornWrite,
            },
        );
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        sim.run_until(SimTime::from_secs(9));
        // Verified replay stopped at the torn frame and truncated: the
        // prefix record survives, the torn one is a bounded, known loss,
        // and the replica is NOT quarantined.
        assert!(store.is_visible(US, "k1", 1), "prefix replays");
        assert!(!store.is_visible(US, "k2", 2), "torn record is lost");
        assert_eq!(store.wal_len(US), 1);
        assert_eq!(
            store.replica_health(US),
            crate::engine::ReplicaHealth::Healthy
        );
        // Anti-entropy back-fills the lost record from the healthy peers.
        let s = store.clone();
        sim.block_on(async move {
            s.repair_sweep().await;
        });
        assert!(store.is_visible(US, "k2", 2));
        assert!(store.engine.converged_bytes());
    }

    #[test]
    fn truncated_wal_index_is_rebuilt_so_backfills_relog() {
        // Regression for the dedupe-index/WAL divergence: the queue family
        // logs through the dedupe index, so a stale index entry for a
        // record that truncation removed would make the back-fill's append
        // a silent no-op — and a second crash would lose the record
        // permanently. Replay must rebuild the index from the records that
        // actually survived.
        let sim = Sim::new(31);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(
            &sim,
            net,
            "amq",
            &[EU, US],
            QueueProfile {
                local_publish: Dist::constant_ms(1.0),
                delivery: Dist::constant_ms(80.0),
                local_delivery: Dist::constant_ms(2.0),
                rtt_hops: 1.0,
            },
        );
        let q2 = q.clone();
        let (id1, id2) = sim.block_on(async move {
            let id1 = q2.publish(EU, Bytes::from_static(b"m1")).await.unwrap();
            let id2 = q2.publish(EU, Bytes::from_static(b"m2")).await.unwrap();
            q2.wait_visible(US, id1).await.unwrap();
            q2.wait_visible(US, id2).await.unwrap();
            (id1, id2)
        });
        assert_eq!(q.wal_len(EU), 2);
        // Tear EU's tail frame (the id2 record), then crash-restart EU.
        sim.faults().schedule(
            SimTime::from_secs(4),
            SimTime::from_secs(5),
            FaultKind::DiskFault {
                store: "amq".into(),
                region: EU,
                fault: DiskFaultKind::TornWrite,
            },
        );
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "amq".into(),
                region: EU,
            },
        );
        sim.run_until(SimTime::from_secs(9));
        assert!(q.is_visible(EU, id1));
        assert!(!q.is_visible(EU, id2), "torn record lost at EU");
        assert_eq!(q.wal_len(EU), 1);
        // Anti-entropy back-fills id2 from US. With the rebuilt index the
        // dedupe append re-logs it; with a stale index it would skip.
        let q2 = q.clone();
        sim.block_on(async move {
            q2.repair_sweep().await;
        });
        assert!(q.is_visible(EU, id2));
        assert_eq!(
            q.wal_len(EU),
            2,
            "back-fill must re-log the record truncation removed"
        );
        // The proof: a second crash replays the re-logged record.
        sim.faults().schedule(
            SimTime::from_secs(20),
            SimTime::from_secs(22),
            FaultKind::ReplicaCrash {
                store: "amq".into(),
                region: EU,
            },
        );
        sim.run_until(SimTime::from_secs(23));
        assert!(
            q.is_visible(EU, id2),
            "a stale dedupe index would have lost this record for good"
        );
        assert!(q.is_visible(EU, id1));
    }

    #[test]
    fn lost_append_window_drops_durability_until_repair() {
        let (sim, store) = setup(19);
        // Appends at US silently vanish while the window is active…
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(10),
            FaultKind::DiskFault {
                store: "db".into(),
                region: US,
                fault: DiskFaultKind::LostAppend,
            },
        );
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(US, "k", Bytes::from_static(b"x")).await.unwrap();
            // …but the memtable and the ack are unaffected: the loss is
            // silent until something re-reads the log.
            assert!(s.is_visible(US, "k", v));
            s.wait_visible(EU, "k", v).await.unwrap();
        });
        assert_eq!(store.wal_len(US), 0, "the append never hit the log");
        assert_eq!(store.wal_len(EU), 1, "other replicas logged normally");
        sim.faults().schedule(
            SimTime::from_secs(12),
            SimTime::from_secs(15),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        sim.run_until(SimTime::from_secs(16));
        assert!(
            !store.is_visible(US, "k", 1),
            "nothing durable to replay: the crash exposes the lost append"
        );
        let s = store.clone();
        sim.block_on(async move {
            s.repair_sweep().await;
        });
        assert!(store.is_visible(US, "k", 1));
        assert_eq!(store.wal_len(US), 1, "the back-fill logs it (window over)");
    }

    #[test]
    fn suppressed_sends_queue_hints_and_flush_at_heal() {
        let (sim, store) = setup(13);
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(20),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            // SG applies directly; the EU→US send parks as a hint.
            s.wait_visible(SG, "k", v).await.unwrap();
            assert_eq!(s.pending_hints(), 1);
            assert!(!s.is_visible(US, "k", v));
            s.wait_visible(US, "k", v).await.unwrap();
            assert!(s.engine.sim().now() >= SimTime::from_secs(20));
            assert_eq!(s.pending_hints(), 0);
        });
    }

    #[test]
    fn disabled_handoff_drops_suppressed_sends() {
        let (sim, store) = setup(14);
        store.set_recovery(RecoveryConfig::disabled());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        let v = sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
            v
        });
        assert_eq!(store.pending_hints(), 0, "no hint without handoff");
        // Even long after the partition heals the write never reaches US:
        // nothing retries a dropped send.
        sim.run_until(SimTime::from_secs(60));
        assert!(!store.is_visible(US, "k", v));
    }

    #[test]
    fn origin_crash_drops_queued_hints() {
        let (sim, store) = setup(15);
        // EU→US partitioned, so the EU write parks a hint at EU…
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: EU, b: US },
        );
        // …then the EU replica crash-restarts while the hint is queued.
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: EU,
            },
        );
        let s = store.clone();
        let v = sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
            assert_eq!(s.pending_hints(), 1);
            v
        });
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(store.pending_hints(), 0, "crash lost the hint queue");
        // The hint died with the EU process; without anti-entropy the US
        // replica never converges (the repair module closes this gap).
        assert!(!store.is_visible(US, "k", v));
        // EU itself recovered its copy from the WAL.
        assert!(store.is_visible(EU, "k", v));
    }

    #[test]
    fn waiters_in_dark_region_are_cancelled_not_leaked() {
        let (sim, store) = setup(16);
        // Subscribe a waiter at US for a write that will never arrive before
        // the outage, then let the outage start.
        sim.faults().schedule(
            SimTime::from_secs(2),
            SimTime::from_secs(6),
            FaultKind::RegionOutage { region: US },
        );
        let s = store.clone();
        let outcome: Rc<std::cell::RefCell<Option<Result<(), StoreError>>>> =
            Rc::new(std::cell::RefCell::new(None));
        let slot = outcome.clone();
        sim.spawn(async move {
            let res = s.wait_visible(US, "never-written", 1).await;
            *slot.borrow_mut() = Some(res);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(store.waiter_count(US), 1, "waiter subscribed pre-outage");
        sim.run_until(SimTime::from_secs(3));
        // Regression (waiter leak): outage entry must cancel the waiter, not
        // strand it past the window.
        assert_eq!(store.waiter_count(US), 0, "outage entry drains waiters");
        match outcome.borrow().clone() {
            Some(Err(StoreError::Unavailable { region, .. })) => assert_eq!(region, US),
            other => panic!("waiter should surface Unavailable, got {other:?}"),
        }
        // Re-armed waits after the heal succeed normally.
        let s = store.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                sim.sleep_until(SimTime::from_secs(6)).await;
                let v = s.put(EU, "k", Bytes::new()).await.unwrap();
                s.wait_visible(US, "k", v).await.unwrap();
            }
        });
        assert_eq!(store.waiter_count(US), 0, "satisfied waiters drain too");
    }

    #[test]
    fn recovery_monitor_does_not_prevent_quiescence() {
        // A store with no faults: sim.run() must terminate even though the
        // monitor task is parked (it holds no timer while the plan is empty).
        let (sim, store) = setup(17);
        let s = store.clone();
        sim.spawn(async move {
            s.put(EU, "k", Bytes::new()).await.unwrap();
        });
        sim.run();
        assert!(store.is_visible(US, "k", 1));
        assert!(store.is_visible(SG, "k", 1));
    }
}

//! A free-list slab for hot-path scratch buffers.
//!
//! The engine's steady-state hop (commit → batched fan-out → apply) and the
//! shim's envelope encode both need a short-lived `Vec<u8>` to assemble a
//! byte frame before freezing it into [`bytes::Bytes`]. Allocating that
//! scratch per hop is exactly the per-write cost the perf plan removes: the
//! slab keeps a bounded thread-local free list of buffers, so after warmup a
//! hop's scratch is always a recycled buffer — the `allocated` counter goes
//! flat while `reused` grows, which is how `BENCH_engine.json` proves the
//! zero-allocation claim deterministically (no allocator telemetry needed).
//!
//! Usage is a strict bracket: [`take`] a buffer (cleared, capacity ≥ the
//! hint), fill it, copy the frozen form out, then [`give`] it back. Buffers
//! that escape the bracket (e.g. moved into a `Bytes`) are simply never
//! returned — the slab shrinks by one and re-warms on the next miss, so
//! leaking is safe, just not free.

use std::cell::RefCell;

/// Free-list capacity. More than the engine's deepest synchronous nesting
/// (envelope encode inside an apply inside a batch flush) ever needs; small
/// enough that an idle thread parks only a few KiB.
const MAX_POOLED: usize = 32;

/// Buffers larger than this are dropped instead of pooled, so one giant
/// value can't pin its allocation forever.
const MAX_POOLED_CAPACITY: usize = 1 << 20;

thread_local! {
    // lint: allow(hot-path-vec-alloc, the empty free-list itself — one
    // allocation-free const init per thread, not a per-write buffer)
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    static STATS: RefCell<SlabStats> = const { RefCell::new(SlabStats::new()) };
}

/// Deterministic slab telemetry for this thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Pool misses: a fresh `Vec<u8>` had to be allocated.
    pub allocated: u64,
    /// Pool hits: a recycled buffer was handed out (no allocation).
    pub reused: u64,
    /// Buffers returned to the pool.
    pub returned: u64,
}

impl SlabStats {
    const fn new() -> Self {
        SlabStats {
            allocated: 0,
            reused: 0,
            returned: 0,
        }
    }
}

/// Takes a cleared scratch buffer with at least `min_capacity` bytes of
/// capacity, recycling a pooled one when available.
pub fn take(min_capacity: usize) -> Vec<u8> {
    let pooled = POOL.with(|p| p.borrow_mut().pop());
    match pooled {
        Some(mut buf) => {
            STATS.with(|s| s.borrow_mut().reused += 1);
            buf.clear();
            if buf.capacity() < min_capacity {
                // len is 0 after clear, so this guarantees the full hint.
                buf.reserve(min_capacity);
            }
            buf
        }
        None => {
            STATS.with(|s| s.borrow_mut().allocated += 1);
            // lint: allow(hot-path-vec-alloc, the pool's own miss path —
            // the one place a fresh buffer is supposed to come from, and
            // exactly what the `allocated` counter meters)
            Vec::with_capacity(min_capacity)
        }
    }
}

/// Returns a scratch buffer to the pool (bounded; oversized or surplus
/// buffers are dropped).
pub fn give(buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            STATS.with(|s| s.borrow_mut().returned += 1);
            pool.push(buf);
        }
    });
}

/// Reads this thread's slab counters.
pub fn stats() -> SlabStats {
    STATS.with(|s| *s.borrow())
}

/// Zeroes the counters (start of a measured workload). The pool itself is
/// kept — resetting counters after warmup is how a benchmark pins
/// "steady state allocates nothing".
pub fn reset_stats() {
    STATS.with(|s| *s.borrow_mut() = SlabStats::new());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_instead_of_allocating() {
        reset_stats();
        let base = stats();
        let buf = take(64);
        assert!(buf.capacity() >= 64);
        give(buf);
        let buf2 = take(16);
        give(buf2);
        let s = stats();
        assert_eq!(s.allocated - base.allocated, 1, "second take must reuse");
        assert!(s.reused >= 1);
        assert!(s.returned >= 2);
    }

    #[test]
    fn reused_buffers_come_back_cleared_and_grown() {
        let mut buf = take(8);
        buf.extend_from_slice(b"dirty");
        give(buf);
        let buf2 = take(4096);
        assert!(buf2.is_empty(), "recycled scratch must be cleared");
        assert!(buf2.capacity() >= 4096, "recycled scratch must be regrown");
        give(buf2);
    }

    #[test]
    fn oversized_buffers_are_not_pooled() {
        reset_stats();
        give(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        assert_eq!(stats().returned, 0);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        // The BENCH_engine.json claim in miniature: after one warmup
        // bracket, N more brackets hit the pool every time.
        let warm = take(128);
        give(warm);
        reset_stats();
        for _ in 0..100 {
            let b = take(128);
            give(b);
        }
        let s = stats();
        assert_eq!(s.allocated, 0, "steady state must not allocate");
        assert_eq!(s.reused, 100);
    }
}

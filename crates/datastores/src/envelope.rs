//! The value envelope used for datastore lineage propagation (paper §6.2).
//!
//! Shim `write` serializes the lineage and stores it alongside the data value
//! in the underlying datastore; shim `read` recovers both. The envelope is a
//! tiny length-prefixed framing: `[varint data_len][data][varint lin_len][lineage]`.
//! Its size overhead is exactly what Table 3 measures.

use antipode_lineage::varint::{get_varint, put_varint, CodecError};
use antipode_lineage::Lineage;
use bytes::{Buf, Bytes};

/// A data value paired with the (optional) lineage it was written under.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// The application value.
    pub data: Bytes,
    /// The serialized lineage stored alongside it, if any.
    pub lineage: Option<Lineage>,
}

impl Envelope {
    /// Wraps a bare value (no lineage — what non-Antipode writers store).
    pub fn bare(data: Bytes) -> Self {
        Envelope {
            data,
            lineage: None,
        }
    }

    /// Wraps a value with the lineage it depends on.
    pub fn with_lineage(data: Bytes, lineage: Lineage) -> Self {
        Envelope {
            data,
            lineage: Some(lineage),
        }
    }

    /// Encodes the envelope to the stored byte representation. The lineage
    /// part comes from the lineage's cached wire encoding, so re-encoding an
    /// unchanged lineage across writes costs a memcpy, not a serialization —
    /// and the assembly scratch comes from (and returns to) the hot-path
    /// [`crate::slab`], so a steady-state encode's only allocation is the
    /// frozen `Bytes` itself.
    pub fn encode(&self) -> Bytes {
        let lin = self.lineage.as_ref().map(Lineage::wire_bytes);
        let lin_len = lin.as_ref().map_or(0, |l| l.len());
        let mut buf = crate::slab::take(self.data.len() + lin_len + 10);
        put_varint(&mut buf, self.data.len() as u64);
        buf.extend_from_slice(&self.data);
        put_varint(&mut buf, lin_len as u64);
        if let Some(l) = lin {
            buf.extend_from_slice(&l);
        }
        let frozen = Bytes::copy_from_slice(&buf);
        crate::slab::give(buf);
        frozen
    }

    /// Decodes a stored byte representation.
    pub fn decode(bytes: &Bytes) -> Result<Envelope, CodecError> {
        let mut buf = bytes.clone();
        let data_len = get_varint(&mut buf)? as usize;
        if buf.remaining() < data_len {
            return Err(CodecError::LengthOutOfBounds);
        }
        let data = buf.copy_to_bytes(data_len);
        let lin_len = get_varint(&mut buf)? as usize;
        if buf.remaining() < lin_len {
            return Err(CodecError::LengthOutOfBounds);
        }
        let lineage = if lin_len == 0 {
            None
        } else {
            let lin_bytes = buf.copy_to_bytes(lin_len);
            Some(Lineage::deserialize(&lin_bytes)?)
        };
        Ok(Envelope { data, lineage })
    }

    /// Bytes the envelope adds on top of the raw value — the per-object
    /// overhead Table 3 reports (before store-specific amplification).
    pub fn overhead(&self) -> usize {
        self.encode().len() - self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::{LineageId, WriteId};

    #[test]
    fn bare_round_trip() {
        let e = Envelope::bare(Bytes::from_static(b"hello"));
        let back = Envelope::decode(&e.encode()).unwrap();
        assert_eq!(back, e);
        assert!(back.lineage.is_none());
    }

    #[test]
    fn lineage_round_trip() {
        let mut l = Lineage::new(LineageId(9));
        l.append(WriteId::new("mysql", "post-1", 4));
        let e = Envelope::with_lineage(Bytes::from_static(b"payload"), l.clone());
        let back = Envelope::decode(&e.encode()).unwrap();
        assert_eq!(back.data, Bytes::from_static(b"payload"));
        assert_eq!(back.lineage, Some(l));
    }

    #[test]
    fn empty_value_round_trip() {
        let e = Envelope::bare(Bytes::new());
        assert_eq!(Envelope::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn overhead_is_small_for_typical_lineages() {
        let mut l = Lineage::new(LineageId(0xfeed));
        l.append(WriteId::new("post-storage-dynamodb", "post-123456", 17));
        let e = Envelope::with_lineage(Bytes::from(vec![0u8; 400_000]), l);
        // Table 3: DynamoDB overhead is +42 B on a 400 KB object (0.01%).
        let oh = e.overhead();
        assert!(oh < 80, "overhead {oh} B");
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut l = Lineage::new(LineageId(1));
        l.append(WriteId::new("s", "k", 1));
        let e = Envelope::with_lineage(Bytes::from_static(b"data"), l);
        let enc = e.encode();
        let cut = enc.slice(0..enc.len() - 2);
        assert!(Envelope::decode(&cut).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Envelope::decode(&Bytes::from_static(&[0xff, 0xff, 0xff])).is_err());
    }
}

//! Batched replication fan-out: the engine's hot-path send machinery.
//!
//! The original pipeline spawned one executor task per `(write, destination)`
//! send and paid one wake per retry hop — at million-write scale the
//! simulator's time is spent in the executor, not the model. This module
//! replaces per-send tasks with one *pair queue* per `(origin, dest)` region
//! pair: a commit samples each send's first phase synchronously (same RNG
//! stream, same draw order as the old spawn-per-send path — the spawned tasks
//! took their first samples at the commit instant anyway), pushes an entry,
//! and arms at most one timer wake per pair. When the wake fires, every due
//! entry of the pair advances in one virtual-time event, and entries that
//! reached delivery are applied as one batch (`Engine::apply_batch`): one
//! fault-plan consultation, one replica borrow, one WAL index pass.
//!
//! ## Determinism
//!
//! `seed + plan ⇒ identical trace` is preserved, and the unbatched ablation
//! (`Engine::set_batching(false)`) produces the *same* trace while paying
//! one executor event per entry:
//!
//! - Phase-one samples are drawn at commit time in destination order — in
//!   both modes, by the same code.
//! - Retry/arrival samples are drawn when an entry's `due` instant arrives,
//!   in queue order. Batched mode drains all due entries of a pair in one
//!   event; unbatched mode processes exactly one entry per event and
//!   immediately re-arms — same entries, same order, same draw sequence.
//! - Applies never consume RNG and samples never read replica state, so the
//!   relative order of "draw for entry B" vs "apply entry A" (the only thing
//!   the two modes reorder within an instant) is unobservable.
//! - Fault predicates are pure functions of the plan and the current
//!   instant, so one per-batch consultation at delivery equals N per-entry
//!   consultations at the same instant.
//!
//! The satellite suite (`tests/engine_batching.rs`) pins this equivalence on
//! visibility-probe traces across seeds and chaos plans.

use std::collections::VecDeque;
use std::rc::Rc;

use antipode_sim::{Region, SimTime};
use bytes::Bytes;

use crate::engine::{ApplyItem, Engine};
use crate::recovery::Hint;
use crate::stats;
use crate::substrate::{RetryStyle, Substrate};

/// Where one queued send is in its retry state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SendPhase {
    /// `ResampleLag`: the last sample dropped the send; re-run the full
    /// (drop, backoff | lag) lottery at `due`.
    Retry,
    /// `ResampleLag`: in flight; deliver at `due`.
    Transit,
    /// `LagOnce`: the message arrives at `due`, where the drop lottery runs
    /// (queue deliveries sample their lag exactly once).
    Arrive,
    /// `LagOnce`: dropped on arrival; the redelivery lottery re-runs at
    /// `due`.
    Redeliver,
}

/// One queued replication send: everything `finish_send` needs, plus the
/// retry state machine position. `key`/`value` are refcount bumps off the
/// commit's allocations — a queued entry allocates nothing of its own.
pub(crate) struct PendingSend {
    pub(crate) key: Rc<str>,
    pub(crate) version: u64,
    pub(crate) value: Bytes,
    pub(crate) committed_at: SimTime,
    /// Origin crash epoch captured at commit; a mismatch at delivery means
    /// the sending process died (see [`crate::recovery`]).
    pub(crate) origin_epoch: u64,
    pub(crate) phase: SendPhase,
    pub(crate) due: SimTime,
}

/// The send queue of one `(origin, dest)` region pair, with at most one
/// armed timer wake.
#[derive(Default)]
pub(crate) struct PairQueue {
    pub(crate) entries: VecDeque<PendingSend>,
    /// The armed wake's (deadline, generation); stale wake tasks whose
    /// generation no longer matches retire without flushing.
    armed: Option<(SimTime, u64)>,
    generation: u64,
}

impl PairQueue {
    /// Tightens the armed wake to `due` if it is not already at least that
    /// early; returns the new generation to arm a flusher for, or `None`
    /// when the existing wake covers `due`.
    fn tighten(&mut self, due: SimTime) -> Option<u64> {
        if matches!(self.armed, Some((at, _)) if at <= due) {
            return None;
        }
        self.generation += 1;
        self.armed = Some((due, self.generation));
        Some(self.generation)
    }
}

impl<S: Substrate> Engine<S> {
    /// Replaces the fan-out loop of [`Engine::commit`]: samples each
    /// destination's first phase (in destination order, the draw order of
    /// the old spawn-per-send path) and queues one [`PendingSend`] per
    /// destination on its pair queue.
    pub(crate) fn enqueue_sends(
        &self,
        origin: Region,
        origin_epoch: u64,
        key: &Rc<str>,
        version: u64,
        value: &Bytes,
        committed_at: SimTime,
    ) {
        let applies_at_commit = self.inner.substrate.origin_applies_at_commit();
        for &dest in self.inner.regions.iter() {
            if dest == origin && applies_at_commit {
                continue;
            }
            let (phase, due) = self.sample_initial(origin, dest, committed_at);
            self.inner.inflight.set(self.inner.inflight.get() + 1);
            // Push and arm under one pair-map borrow; the flusher task is
            // spawned outside it (spawning touches only executor state).
            let arm = {
                let mut pairs = self.inner.pairs.borrow_mut();
                let pq = pairs.entry((origin, dest)).or_default();
                pq.entries.push_back(PendingSend {
                    key: Rc::clone(key),
                    version,
                    value: value.clone(),
                    committed_at,
                    origin_epoch,
                    phase,
                    due,
                });
                pq.tighten(due)
            };
            if let Some(generation) = arm {
                self.spawn_flusher(origin, dest, due, generation);
            }
        }
    }

    /// A send's first phase, sampled at commit time.
    fn sample_initial(&self, origin: Region, dest: Region, now: SimTime) -> (SendPhase, SimTime) {
        match self.inner.substrate.retry_style() {
            RetryStyle::ResampleLag => self.sample_resample(origin, dest, now),
            RetryStyle::LagOnce => {
                let lag = {
                    let mut rng = self.inner.rng.borrow_mut();
                    self.inner.substrate.propagation_lag(
                        &mut rng,
                        &self.inner.net,
                        &self.inner.faults,
                        now,
                        &self.inner.name,
                        origin,
                        dest,
                    )
                };
                (SendPhase::Arrive, now + lag)
            }
        }
    }

    /// One `ResampleLag` lottery at `now`: dropped sends back off and
    /// re-sample; survivors enter transit with a freshly sampled lag. Only
    /// the distribution actually used is drawn, so a pair's sample cost is
    /// one draw per hop, not three.
    fn sample_resample(&self, origin: Region, dest: Region, now: SimTime) -> (SendPhase, SimTime) {
        let drop_p =
            self.inner
                .substrate
                .drop_probability(&self.inner.faults, now, &self.inner.name);
        let mut rng = self.inner.rng.borrow_mut();
        let dropped = {
            use rand::Rng;
            drop_p > 0.0 && rng.random::<f64>() < drop_p
        };
        if dropped {
            let backoff = self.inner.substrate.retry_backoff(&mut rng);
            (SendPhase::Retry, now + backoff)
        } else {
            let lag = self.inner.substrate.propagation_lag(
                &mut rng,
                &self.inner.net,
                &self.inner.faults,
                now,
                &self.inner.name,
                origin,
                dest,
            );
            (SendPhase::Transit, now + lag)
        }
    }

    /// One `LagOnce` arrival/redelivery lottery at `now`: `None` means the
    /// entry delivers now; `Some(due)` schedules its redelivery retry.
    fn sample_arrival(&self, now: SimTime) -> Option<SimTime> {
        let drop_p =
            self.inner
                .substrate
                .drop_probability(&self.inner.faults, now, &self.inner.name);
        let mut rng = self.inner.rng.borrow_mut();
        let dropped = {
            use rand::Rng;
            drop_p > 0.0 && rng.random::<f64>() < drop_p
        };
        if dropped {
            let backoff = self.inner.substrate.retry_backoff(&mut rng);
            Some(now + backoff)
        } else {
            None
        }
    }

    /// Arms (or tightens) the pair's single timer wake to fire at `due`.
    /// A later-armed wake whose generation was superseded retires silently.
    fn arm_wake(&self, origin: Region, dest: Region, due: SimTime) {
        let arm = {
            let mut pairs = self.inner.pairs.borrow_mut();
            match pairs.get_mut(&(origin, dest)) {
                Some(pq) => pq.tighten(due),
                None => return,
            }
        };
        if let Some(generation) = arm {
            self.spawn_flusher(origin, dest, due, generation);
        }
    }

    /// Spawns the single flusher task for an armed wake; stale generations
    /// retire without flushing.
    fn spawn_flusher(&self, origin: Region, dest: Region, due: SimTime, generation: u64) {
        let eng = self.clone();
        self.inner.sim.spawn_detached(async move {
            eng.inner.sim.sleep_until(due).await;
            let fire = {
                let mut pairs = eng.inner.pairs.borrow_mut();
                match pairs.get_mut(&(origin, dest)) {
                    Some(pq) if matches!(pq.armed, Some((_, g)) if g == generation) => {
                        pq.armed = None;
                        true
                    }
                    _ => false,
                }
            };
            if fire {
                eng.flush_pair(origin, dest);
            }
        });
    }

    /// One flusher wake for a pair: advance every due entry (batched) or
    /// exactly one (the unbatched ablation), then deliver the entries that
    /// completed as a single apply batch with one fault consultation.
    pub(crate) fn flush_pair(&self, origin: Region, dest: Region) {
        let now = self.inner.sim.now();
        let batched = self.inner.batching.get();
        stats::count_fanout_event();
        let mut deliver = self.inner.deliver_scratch.take();
        deliver.clear();
        // Phase transitions. Entries are scanned in queue order; samples for
        // later entries may be drawn before earlier entries' applies run
        // (below), which is unobservable — applies consume no RNG and
        // samples read no replica state.
        {
            let mut pairs = self.inner.pairs.borrow_mut();
            let Some(pq) = pairs.get_mut(&(origin, dest)) else {
                self.inner.deliver_scratch.replace(deliver);
                return;
            };
            let mut budget = if batched { usize::MAX } else { 1 };
            let mut i = 0;
            while i < pq.entries.len() {
                if budget == 0 {
                    break;
                }
                let entry = &mut pq.entries[i];
                if entry.due > now {
                    i += 1;
                    continue;
                }
                budget -= 1;
                let completed = match entry.phase {
                    SendPhase::Transit => true,
                    SendPhase::Retry => {
                        let (phase, due) = self.sample_resample(origin, dest, now);
                        entry.phase = phase;
                        entry.due = due;
                        false
                    }
                    SendPhase::Arrive | SendPhase::Redeliver => match self.sample_arrival(now) {
                        Some(due) => {
                            entry.phase = SendPhase::Redeliver;
                            entry.due = due;
                            false
                        }
                        None => true,
                    },
                };
                if completed {
                    // lint: allow(fault-path-unwrap, `i` is bounded by the
                    // scan loop over this queue — an invariant of the local
                    // index arithmetic, not state a fault can perturb)
                    let entry = pq.entries.remove(i).expect("index in bounds");
                    deliver.push(ApplyItem {
                        key: entry.key,
                        version: entry.version,
                        bytes: entry.value,
                        committed_at: entry.committed_at,
                        origin_epoch: entry.origin_epoch,
                    });
                } else {
                    i += 1;
                }
            }
        }
        // Terminal step, per batch: one epoch read, one fault-plan
        // consultation. Entries from a crashed origin epoch are abandoned
        // (the sending process died); suppressed batches park as hints in
        // queue order or drop under the no-handoff ablation.
        if !deliver.is_empty() {
            stats::count_send_entries(deliver.len() as u64);
            self.inner
                .inflight
                .set(self.inner.inflight.get() - deliver.len());
            let origin_epoch_now = self.replica_epoch(origin);
            deliver.retain(|item| item.origin_epoch == origin_epoch_now);
            let suppressed = self.inner.substrate.send_suppressed(
                &self.inner.faults,
                now,
                &self.inner.name,
                origin,
                dest,
            ) || self
                .inner
                .faults
                .replica_crashed(now, &self.inner.name, dest);
            if !suppressed {
                self.apply_batch(dest, &mut deliver);
            } else if self.inner.recovery.get().hinted_handoff {
                let mut hints = self.inner.hints.borrow_mut();
                for item in deliver.drain(..) {
                    hints.push(Hint {
                        origin,
                        dest,
                        key: item.key,
                        version: item.version,
                        bytes: item.bytes,
                        committed_at: item.committed_at,
                    });
                }
            } else {
                deliver.clear();
            }
        }
        self.inner.deliver_scratch.replace(deliver);
        // Re-arm for the earliest remaining entry. In unbatched mode
        // leftover already-due entries re-arm at `now`, costing one executor
        // event each — the ablation's whole point.
        let next = {
            let pairs = self.inner.pairs.borrow();
            pairs
                .get(&(origin, dest))
                .and_then(|pq| pq.entries.iter().map(|e| e.due).min())
        };
        if let Some(due) = next {
            self.arm_wake(origin, dest, due.max(now));
        }
    }

    /// Queued-but-undelivered sends across all pairs (diagnostics).
    pub(crate) fn pending_sends(&self) -> usize {
        self.inner
            .pairs
            .borrow()
            .values()
            .map(|pq| pq.entries.len())
            .sum()
    }
}

//! Simulated S3 (object store with cross-region replication) and its shim.
//!
//! S3's replication is by far the slowest and most heavy-tailed of the
//! post-storage stores (AWS documents up to 15 minutes; the paper measured
//! barrier waits of ≈ 18 s on average, §7.4) — it is the 100 % column of
//! Table 1.

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::kv_facade;
use crate::replica::{StoreError, StoredValue};
use crate::shim::ShimError;

/// Extra per-object amplification: the lineage rides as user metadata in the
/// object's HTTP header block (Table 3: +320 B total).
pub const USER_METADATA_OVERHEAD_BYTES: usize = 256;

kv_facade! {
    /// A simulated S3 bucket set with cross-region replication.
    store S3(profile: crate::profiles::s3);
    /// The Antipode shim for [`S3`].
    shim S3Shim;
}

impl S3 {
    /// PutObject (baseline path, no lineage).
    pub async fn put_object(
        &self,
        region: Region,
        key: &str,
        body: Bytes,
    ) -> Result<u64, StoreError> {
        self.store.put(region, key, body).await
    }

    /// GetObject from the region-local bucket.
    pub async fn get_object(
        &self,
        region: Region,
        key: &str,
    ) -> Result<Option<StoredValue>, StoreError> {
        self.store.get(region, key).await
    }
}

impl S3Shim {
    /// Lineage-propagating PutObject.
    pub async fn put_object(
        &self,
        region: Region,
        key: &str,
        body: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.write(region, key, body, lineage).await
    }

    /// Lineage-recovering GetObject.
    #[allow(clippy::type_complexity)]
    pub async fn get_object(
        &self,
        region: Region,
        key: &str,
    ) -> Result<Option<(Bytes, Option<Lineage>)>, ShimError> {
        self.inner.read(region, key).await
    }

    /// Table 3 model: envelope plus the user-metadata header block (+320 B).
    pub fn storage_overhead(&self, lineage: &Lineage) -> usize {
        self.inner.envelope_overhead(lineage) + USER_METADATA_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode::wait::WaitTarget;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;

    #[test]
    fn replication_takes_many_seconds() {
        let sim = Sim::new(31);
        let net = Rc::new(Network::global_triangle());
        let s3 = S3::new(&sim, net, "bucket", &[EU, US]);
        let shim = S3Shim::new(&s3);
        let elapsed = sim.block_on({
            let sim = sim.clone();
            async move {
                let mut lin = Lineage::new(LineageId(1));
                let wid = shim
                    .put_object(EU, "obj/1", Bytes::from(vec![0u8; 1_000]), &mut lin)
                    .await
                    .unwrap();
                let start = sim.now();
                shim.wait(&wid, US).await.unwrap();
                sim.now().since(start)
            }
        });
        assert!(
            elapsed.as_secs_f64() > 1.0,
            "S3 replication {elapsed:?} suspiciously fast"
        );
    }

    #[test]
    fn object_round_trip_and_overhead() {
        let sim = Sim::new(32);
        let net = Rc::new(Network::global_triangle());
        let s3 = S3::new(&sim, net, "bucket", &[EU, US]);
        let shim = S3Shim::new(&s3);
        sim.block_on(async move {
            let mut lin = Lineage::new(LineageId(1));
            shim.put_object(EU, "obj/1", Bytes::from_static(b"body"), &mut lin)
                .await
                .unwrap();
            let (body, _) = shim.get_object(EU, "obj/1").await.unwrap().unwrap();
            assert_eq!(body, Bytes::from_static(b"body"));
            // Table 3: ≈ +320 B.
            let oh = shim.storage_overhead(&lin);
            assert!((260..450).contains(&oh), "overhead {oh}");
        });
    }
}

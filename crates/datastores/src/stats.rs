//! Engine-plane instrumentation counters.
//!
//! Mirrors `antipode_lineage::stats` for the replication engine: the
//! events that correspond one-to-one with hot-path work in the commit →
//! fan-out → apply pipeline, tracked as deterministic thread-local counters
//! so `BENCH_engine.json` can pin them across same-seed runs. The headline
//! ratio is `send_entries / fanout_events` — the average batch size — which
//! is exactly the per-write executor cost the batched fan-out amortizes.

use std::cell::Cell;

thread_local! {
    static COMMITS: Cell<u64> = const { Cell::new(0) };
    static FANOUT_EVENTS: Cell<u64> = const { Cell::new(0) };
    static SEND_ENTRIES: Cell<u64> = const { Cell::new(0) };
    static APPLIES: Cell<u64> = const { Cell::new(0) };
    static WAL_APPENDS: Cell<u64> = const { Cell::new(0) };
    static WAL_BYTES: Cell<u64> = const { Cell::new(0) };
    static BATCH_FLUSHES: Cell<u64> = const { Cell::new(0) };
    static MAX_BATCH: Cell<u64> = const { Cell::new(0) };
    static SCRUB_RECORDS: Cell<u64> = const { Cell::new(0) };
    static INTEGRITY_REFUSALS: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the engine-plane counters on this thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Writes committed (one per `put`/`publish` that assigned a version).
    pub commits: u64,
    /// Virtual-time executor events consumed by replication fan-out (flusher
    /// wakes). Unbatched fan-out pays one per send entry; batching coalesces
    /// every due entry of an (origin, dest) pair into one.
    pub fanout_events: u64,
    /// Replication send entries that reached their terminal step (applied,
    /// parked as a hint, or abandoned to a crash epoch).
    pub send_entries: u64,
    /// Replica applies that inserted or acknowledged a record.
    pub applies: u64,
    /// Write-ahead-log appends (post-dedupe — entries actually logged).
    pub wal_appends: u64,
    /// Bytes logged across those appends (key + value + fixed entry header).
    pub wal_bytes: u64,
    /// Batch deliveries (apply batches handed to a replica in one event).
    pub batch_flushes: u64,
    /// Largest apply batch observed.
    pub max_batch: u64,
    /// WAL records re-verified by scrub sweeps (see
    /// [`crate::repair::ScrubReport`]).
    pub scrub_records: u64,
    /// Operations refused with [`crate::replica::StoreError::IntegrityFault`]
    /// because the replica was quarantined.
    pub integrity_refusals: u64,
}

/// Reads the counters.
pub fn snapshot() -> EngineStats {
    EngineStats {
        commits: COMMITS.with(Cell::get),
        fanout_events: FANOUT_EVENTS.with(Cell::get),
        send_entries: SEND_ENTRIES.with(Cell::get),
        applies: APPLIES.with(Cell::get),
        wal_appends: WAL_APPENDS.with(Cell::get),
        wal_bytes: WAL_BYTES.with(Cell::get),
        batch_flushes: BATCH_FLUSHES.with(Cell::get),
        max_batch: MAX_BATCH.with(Cell::get),
        scrub_records: SCRUB_RECORDS.with(Cell::get),
        integrity_refusals: INTEGRITY_REFUSALS.with(Cell::get),
    }
}

/// Zeroes the counters (start of a measured workload).
pub fn reset() {
    COMMITS.with(|c| c.set(0));
    FANOUT_EVENTS.with(|c| c.set(0));
    SEND_ENTRIES.with(|c| c.set(0));
    APPLIES.with(|c| c.set(0));
    WAL_APPENDS.with(|c| c.set(0));
    WAL_BYTES.with(|c| c.set(0));
    BATCH_FLUSHES.with(|c| c.set(0));
    MAX_BATCH.with(|c| c.set(0));
    SCRUB_RECORDS.with(|c| c.set(0));
    INTEGRITY_REFUSALS.with(|c| c.set(0));
}

pub(crate) fn count_commit() {
    COMMITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_fanout_event() {
    FANOUT_EVENTS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_send_entries(n: u64) {
    SEND_ENTRIES.with(|c| c.set(c.get() + n));
}

pub(crate) fn count_applies(n: u64) {
    APPLIES.with(|c| c.set(c.get() + n));
}

pub(crate) fn count_wal_append(bytes: u64) {
    WAL_APPENDS.with(|c| c.set(c.get() + 1));
    WAL_BYTES.with(|c| c.set(c.get() + bytes));
}

pub(crate) fn count_scrub_records(n: u64) {
    SCRUB_RECORDS.with(|c| c.set(c.get() + n));
}

pub(crate) fn count_integrity_refusal() {
    INTEGRITY_REFUSALS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_batch_flush(batch: u64) {
    BATCH_FLUSHES.with(|c| c.set(c.get() + 1));
    MAX_BATCH.with(|c| {
        if batch > c.get() {
            c.set(batch);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        count_commit();
        count_fanout_event();
        count_send_entries(3);
        count_applies(1);
        count_wal_append(40);
        count_batch_flush(3);
        count_batch_flush(1);
        count_scrub_records(5);
        count_integrity_refusal();
        let s = snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.fanout_events, 1);
        assert_eq!(s.send_entries, 3);
        assert_eq!(s.applies, 1);
        assert_eq!(s.wal_appends, 1);
        assert_eq!(s.wal_bytes, 40);
        assert_eq!(s.batch_flushes, 2);
        assert_eq!(s.max_batch, 3);
        assert_eq!(s.scrub_records, 5);
        assert_eq!(s.integrity_refusals, 1);
        reset();
        assert_eq!(snapshot(), EngineStats::default());
    }
}

//! Simulated DynamoDB (global tables) and its Antipode shim.
//!
//! DynamoDB plays two roles in the paper: a post-storage (items replicated
//! via global tables, eventually consistent by default with optional
//! strongly consistent reads — which is how the paper implements `wait`,
//! §6.4) and a notifier (item writes observed through a streams-style poll,
//! much slower for that payload type — Table 1's ≈ 0 % row). The notifier
//! role is [`DynamoDbStream`].

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::{kv_facade, queue_facade};
use crate::replica::{StoreError, StoredValue};
use crate::shim::{ShimError, ShimMessage, ShimSubscription};

kv_facade! {
    /// A simulated DynamoDB global table.
    store DynamoDb(profile: crate::profiles::dynamodb);
    /// The Antipode shim for [`DynamoDb`].
    shim DynamoDbShim;
}

impl DynamoDb {
    /// PutItem (baseline path, no lineage).
    pub async fn put_item(
        &self,
        region: Region,
        key: &str,
        item: Bytes,
    ) -> Result<u64, StoreError> {
        self.store.put(region, key, item).await
    }

    /// GetItem with default (eventually consistent) semantics: reads the
    /// local replica.
    pub async fn get_item(
        &self,
        region: Region,
        key: &str,
    ) -> Result<Option<StoredValue>, StoreError> {
        self.store.get(region, key).await
    }

    /// GetItem with `ConsistentRead = true`: consults the primary, paying a
    /// round trip from remote regions.
    pub async fn get_item_strong(
        &self,
        region: Region,
        key: &str,
    ) -> Result<Option<StoredValue>, StoreError> {
        self.store.get_strong(region, key).await
    }
}

impl DynamoDbShim {
    /// Lineage-propagating PutItem.
    pub async fn put_item(
        &self,
        region: Region,
        key: &str,
        item: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.write(region, key, item, lineage).await
    }

    /// Lineage-recovering GetItem.
    #[allow(clippy::type_complexity)]
    pub async fn get_item(
        &self,
        region: Region,
        key: &str,
    ) -> Result<Option<(Bytes, Option<Lineage>)>, ShimError> {
        self.inner.read(region, key).await
    }

    /// Table 3 model: the lineage travels as one extra item attribute; no
    /// index amplification (+42 B on a 400 KB object in the paper).
    pub fn storage_overhead(&self, lineage: &Lineage) -> usize {
        self.inner.envelope_overhead(lineage)
    }
}

queue_facade! {
    /// DynamoDB in the notifier role: an item write whose arrival at the
    /// remote reader is observed through a streams-style poll loop.
    store DynamoDbStream(profile: crate::profiles::dynamodb_stream);
    /// The Antipode shim for [`DynamoDbStream`].
    shim DynamoDbStreamShim;
}

impl DynamoDbStream {
    /// Publishes a notification item (baseline path).
    pub async fn publish(&self, region: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.queue.publish(region, payload).await
    }

    /// Subscribes to stream records in a region.
    pub fn subscribe(
        &self,
        region: Region,
    ) -> Result<antipode_sim::sync::Receiver<crate::queue::QueueMessage>, StoreError> {
        self.queue.subscribe(region)
    }
}

impl DynamoDbStreamShim {
    /// Lineage-propagating publish.
    pub async fn publish(
        &self,
        region: Region,
        payload: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.publish(region, payload, lineage).await
    }

    /// Lineage-decoding subscription.
    pub fn subscribe(&self, region: Region) -> Result<ShimSubscription, ShimError> {
        self.inner.subscribe(region)
    }

    /// Receives one message (convenience for tests).
    pub async fn recv_one(sub: &mut ShimSubscription) -> Result<Option<ShimMessage>, ShimError> {
        sub.recv().await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;

    #[test]
    fn eventually_consistent_read_can_miss_strong_read_cannot() {
        let sim = Sim::new(12);
        let net = Rc::new(Network::global_triangle());
        // Primary in EU; reader in US.
        let db = DynamoDb::new(&sim, net, "ddb", &[EU, US]);
        sim.block_on(async move {
            db.put_item(EU, "item-1", Bytes::from_static(b"v"))
                .await
                .unwrap();
            // Immediately: the eventually consistent read in US misses…
            assert!(db.get_item(US, "item-1").await.unwrap().is_none());
            // …the strongly consistent read does not (§6.4).
            assert!(db.get_item_strong(US, "item-1").await.unwrap().is_some());
        });
    }

    #[test]
    fn shim_round_trip_and_overhead() {
        let sim = Sim::new(13);
        let net = Rc::new(Network::global_triangle());
        let db = DynamoDb::new(&sim, net, "ddb", &[EU, US]);
        let shim = DynamoDbShim::new(&db);
        sim.block_on(async move {
            let mut lin = Lineage::new(LineageId(1));
            let wid = shim
                .put_item(EU, "item-1", Bytes::from_static(b"v"), &mut lin)
                .await
                .unwrap();
            let (data, _) = shim.get_item(EU, "item-1").await.unwrap().unwrap();
            assert_eq!(data, Bytes::from_static(b"v"));
            // Table 3: ≈ +42 B, no index amplification.
            let oh = shim.storage_overhead(&lin);
            assert!(oh < 100, "overhead {oh}");
            assert_eq!(&*wid.datastore(), "ddb");
        });
    }

    #[test]
    fn stream_delivery_is_slow() {
        let sim = Sim::new(14);
        let net = Rc::new(Network::global_triangle());
        let s = DynamoDbStream::new(&sim, net, "ddb-stream", &[EU, US]);
        let shim = DynamoDbStreamShim::new(&s);
        let elapsed = sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = shim.subscribe(US).unwrap();
                let mut lin = Lineage::new(LineageId(1));
                shim.publish(EU, Bytes::from_static(b"n"), &mut lin)
                    .await
                    .unwrap();
                let start = sim.now();
                sub.recv().await.unwrap().unwrap();
                sim.now().since(start)
            }
        });
        // Median delivery ≈ 85 s — much slower than post replication.
        assert!(elapsed.as_secs_f64() > 5.0, "elapsed {elapsed:?}");
    }
}

//! The substrate interface: what distinguishes one store *family* from
//! another, factored out of the shared replication engine.
//!
//! Both store families — the versioned key-object family behind
//! [`crate::replica::KvStore`] and the delivery/ack family behind
//! [`crate::queue::QueueStore`] — used to hand-roll the same mechanics:
//! per-region replica state, replication fan-out with fault-plan
//! consultation, visibility waiters, probes, and (KV only) the recovery
//! plane. The shared mechanics now live once in [`crate::engine::Engine`];
//! everything family-specific is expressed through the small [`Substrate`]
//! trait defined here, implemented by [`KvSubstrate`] and [`QueueSubstrate`].
//!
//! The split is behavioral, not cosmetic: because the queue family is now a
//! `Substrate` over the same engine, queue brokers inherit WAL
//! crash-restart, hinted handoff, and anti-entropy repair
//! ([`crate::recovery`], [`crate::repair`]) that previously existed only on
//! the KV side.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::fault::FaultPlan;
use antipode_sim::net::Network;
use antipode_sim::rng::SimRng;
use antipode_sim::sync::{OneSender, Sender};
use antipode_sim::{Region, SimTime};
use bytes::Bytes;

use crate::probe::{VisibilityEvent, VisibilityProbe};
use crate::queue::{QueueMessage, QueueProfile};
use crate::replica::KvProfile;

/// Errors from datastore operations, unified across both store families.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The store has no replica in the named region.
    NoSuchRegion(Region),
    /// The replica exists but is inside a region-outage or crash window: the
    /// store rejects the operation until the region heals. Barrier retry
    /// policies treat this as transient.
    Unavailable {
        /// The store name.
        store: String,
        /// The region that is down.
        region: Region,
    },
    /// The origin replica crash-restarted while the operation was committing:
    /// the committing process died with it, so the write was never assigned a
    /// version. Transient — retry after the crash window.
    CrashedEpoch {
        /// The store name.
        store: String,
        /// The region whose replica crashed mid-commit.
        region: Region,
    },
    /// The store's replication send capacity is exhausted (see
    /// [`crate::replica::KvStore::set_send_capacity`]). Transient back-pressure.
    Overloaded {
        /// The store name.
        store: String,
    },
    /// WAL replay found mid-log corruption (a checksum mismatch), so the
    /// replica is quarantined: its reads refuse to serve until anti-entropy
    /// back-fills it from healthy peers and it rejoins with a bumped epoch.
    /// Barriers observe this as a degraded replica, exactly like an outage.
    IntegrityFault {
        /// The store name.
        store: String,
        /// The quarantined region.
        region: Region,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchRegion(r) => write!(f, "no replica in region {r}"),
            StoreError::Unavailable { store, region } => {
                write!(f, "store {store} unavailable in region {region} (outage)")
            }
            StoreError::CrashedEpoch { store, region } => {
                write!(
                    f,
                    "store {store} crash-restarted in region {region} mid-commit"
                )
            }
            StoreError::Overloaded { store } => {
                write!(f, "store {store} overloaded (send capacity exhausted)")
            }
            StoreError::IntegrityFault { store, region } => {
                write!(
                    f,
                    "store {store} quarantined in region {region} (WAL integrity fault)"
                )
            }
        }
    }
}
impl std::error::Error for StoreError {}

/// How a family treats operations and waits against a faulted replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Fail fast with [`StoreError::Unavailable`] (KV family: a client talking
    /// to a dark region sees errors immediately).
    Reject,
    /// Park until the fault clears (queue family: publishes block on a broker
    /// outage and resume the moment it heals; waits never error on faults).
    Block,
}

/// How a replication/delivery send samples its lag across drop-retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryStyle {
    /// Each retry re-samples the whole propagation lag (KV replication: the
    /// dropped message is re-sent end to end).
    ResampleLag,
    /// The propagation lag is paid once, then drop-retries only pay the
    /// backoff (queue delivery: the message sits broker-side and redelivery
    /// is local).
    LagOnce,
}

/// Everything the engine tells a substrate about one replica apply.
pub struct ApplyCtx<'a> {
    /// The store name.
    pub store: &'a str,
    /// The replica that applied.
    pub region: Region,
    /// The applied key.
    pub key: &'a str,
    /// The applied version (for the queue family, the message id).
    pub version: u64,
    /// The applied bytes.
    pub bytes: &'a Bytes,
    /// Virtual time the write committed at its origin.
    pub committed_at: SimTime,
    /// Whether the apply changed the replica (false when a newer version was
    /// already present — a superseded arrival).
    pub newly_inserted: bool,
    /// The replica's version watermark for this key after the apply.
    pub watermark: u64,
    /// Virtual time of the apply.
    pub at: SimTime,
    /// The store's observation probe, if installed.
    pub probe: Option<&'a VisibilityProbe>,
}

/// Family-specific behavior plugged into the shared [`crate::engine::Engine`].
///
/// A substrate answers the questions the engine cannot answer generically:
/// which RNG stream to draw from, whether faulted operations reject or block,
/// how commit/propagation latencies are sampled from the family's profile,
/// which fault-plan predicates gate a send, and what happens locally when a
/// record lands at a replica (KV: probe emission; queue: subscriber and
/// consumer-group fan-out).
pub trait Substrate: 'static {
    /// Prefix of the store's named RNG stream (`"kv"` or `"queue"`), kept
    /// stable so seeds reproduce the pre-refactor streams.
    fn rng_stream(&self) -> &'static str;

    /// Whether faulted operations reject or block.
    fn admission(&self) -> Admission;

    /// How a send samples lag across drop-retries.
    fn retry_style(&self) -> RetryStyle;

    /// Whether the committing origin applies locally at commit time (KV) or
    /// receives its copy through the same asynchronous fan-out as every other
    /// region (queue: even origin-region delivery pays `local_delivery`).
    fn origin_applies_at_commit(&self) -> bool;

    /// The key recorded for a commit that supplied none (queue publishes are
    /// keyed by message id).
    fn derived_key(&self, version: u64) -> String {
        format!("msg-{version}")
    }

    /// Whether an operation against `region` is gated by the fault plan.
    fn op_blocked(&self, faults: &FaultPlan, at: SimTime, store: &str, region: Region) -> bool;

    /// Samples the origin-side commit latency.
    fn commit_latency(&self, rng: &mut SimRng) -> Duration;

    /// The probability a send attempt is dropped at `at`.
    fn drop_probability(&self, faults: &FaultPlan, at: SimTime, store: &str) -> f64;

    /// Samples the backoff before retrying a dropped send.
    fn retry_backoff(&self, rng: &mut SimRng) -> Duration;

    /// Samples the propagation lag of one send from `origin` to `dest`.
    #[allow(clippy::too_many_arguments)]
    fn propagation_lag(
        &self,
        rng: &mut SimRng,
        net: &Network,
        faults: &FaultPlan,
        at: SimTime,
        store: &str,
        origin: Region,
        dest: Region,
    ) -> Duration;

    /// Whether a send arriving at `at` is suppressed by the fault plan (the
    /// engine additionally suppresses sends to crashed replicas). Suppressed
    /// sends park as hinted-handoff entries when handoff is enabled.
    fn send_suppressed(
        &self,
        faults: &FaultPlan,
        at: SimTime,
        store: &str,
        origin: Region,
        dest: Region,
    ) -> bool;

    /// Family-specific reaction to a replica apply (probe emission, pub/sub
    /// fan-out, consumer-group handoff). Not invoked for WAL replay — replay
    /// restores state without re-notifying observers.
    fn on_apply(&self, ctx: &ApplyCtx<'_>);
}

/// The versioned key-object family: fail-fast admission, per-retry lag
/// resampling, origin applies at commit.
pub struct KvSubstrate {
    pub(crate) profile: KvProfile,
}

impl KvSubstrate {
    /// Wraps a KV latency profile.
    pub fn new(profile: KvProfile) -> Self {
        KvSubstrate { profile }
    }
}

impl Substrate for KvSubstrate {
    fn rng_stream(&self) -> &'static str {
        "kv"
    }

    fn admission(&self) -> Admission {
        Admission::Reject
    }

    fn retry_style(&self) -> RetryStyle {
        RetryStyle::ResampleLag
    }

    fn origin_applies_at_commit(&self) -> bool {
        true
    }

    fn op_blocked(&self, faults: &FaultPlan, at: SimTime, store: &str, region: Region) -> bool {
        faults.region_down(at, region) || faults.replica_crashed(at, store, region)
    }

    fn commit_latency(&self, rng: &mut SimRng) -> Duration {
        self.profile.local_write.sample_duration(rng)
    }

    fn drop_probability(&self, faults: &FaultPlan, at: SimTime, store: &str) -> f64 {
        faults.replication_drop(at, store)
    }

    fn retry_backoff(&self, rng: &mut SimRng) -> Duration {
        self.profile.retry_interval.sample_duration(rng)
    }

    fn propagation_lag(
        &self,
        rng: &mut SimRng,
        net: &Network,
        faults: &FaultPlan,
        at: SimTime,
        store: &str,
        origin: Region,
        dest: Region,
    ) -> Duration {
        let extra = self.profile.replication.sample_duration(rng);
        let transit = net
            .delay_faulted(rng, origin, dest, faults, at)
            .mul_f64(self.profile.rtt_hops);
        let congestion = faults
            .replication_extra_lag(store)
            .map(|d| d.sample_duration(rng))
            .unwrap_or_default();
        extra + transit + congestion
    }

    fn send_suppressed(
        &self,
        faults: &FaultPlan,
        at: SimTime,
        store: &str,
        origin: Region,
        dest: Region,
    ) -> bool {
        faults.replication_stalled(at, store, dest) || faults.link_blocked(at, origin, dest)
    }

    fn on_apply(&self, ctx: &ApplyCtx<'_>) {
        // Emitted on every apply, including superseded arrivals: the race
        // detector keys on watermark movement, not insertions.
        if let Some(p) = ctx.probe {
            p(&VisibilityEvent::KvApplied {
                store: ctx.store.to_string(),
                region: ctx.region,
                key: ctx.key.to_string(),
                watermark: ctx.watermark,
                at: ctx.at,
            });
        }
    }
}

pub(crate) struct AckWaiter {
    pub(crate) id: u64,
    pub(crate) tx: OneSender<()>,
}

#[derive(Default)]
pub(crate) struct GroupState {
    pub(crate) pending: VecDeque<QueueMessage>,
    pub(crate) waiters: VecDeque<OneSender<QueueMessage>>,
}

/// Per-region pub/sub state of the queue family: everything layered *above*
/// the engine's replicated record of which messages have been delivered.
/// Acks and group membership model durable broker metadata, so they survive
/// crash-restart windows (the engine only wipes replica memtables).
#[derive(Default)]
pub(crate) struct QueuePubSub {
    pub(crate) acked: BTreeSet<u64>,
    pub(crate) subscribers: Vec<Sender<QueueMessage>>,
    pub(crate) ack_waiters: Vec<AckWaiter>,
    // Iterated on every delivery (each group gets one copy of the message),
    // so the order must be deterministic: a hash map here leaks iteration
    // order into consumer wake-up order.
    pub(crate) groups: BTreeMap<String, GroupState>,
}

/// The delivery/ack family: blocking admission, lag paid once per send,
/// origin-region delivery goes through the same fan-out as remote regions.
pub struct QueueSubstrate {
    pub(crate) profile: QueueProfile,
    /// Backoff before a dropped delivery attempt is retried.
    pub(crate) redelivery: RefCell<Dist>,
    /// When set, a message taken by a group consumer that is not acked
    /// within this interval is redelivered to the group.
    pub(crate) visibility_timeout: Cell<Option<Duration>>,
    /// Per-region subscriber/ack/group state, keyed like the engine replicas.
    pub(crate) pubsub: RefCell<BTreeMap<Region, QueuePubSub>>,
}

impl QueueSubstrate {
    /// Wraps a queue latency profile spanning `regions`.
    pub fn new(profile: QueueProfile, regions: &[Region]) -> Self {
        QueueSubstrate {
            profile,
            redelivery: RefCell::new(Dist::constant_ms(200.0)),
            visibility_timeout: Cell::new(None),
            pubsub: RefCell::new(
                regions
                    .iter()
                    .map(|r| (*r, QueuePubSub::default()))
                    .collect(),
            ),
        }
    }
}

impl Substrate for QueueSubstrate {
    fn rng_stream(&self) -> &'static str {
        "queue"
    }

    fn admission(&self) -> Admission {
        Admission::Block
    }

    fn retry_style(&self) -> RetryStyle {
        RetryStyle::LagOnce
    }

    fn origin_applies_at_commit(&self) -> bool {
        false
    }

    fn op_blocked(&self, faults: &FaultPlan, at: SimTime, store: &str, region: Region) -> bool {
        // A broker outage gates the whole store; a crashed broker replica
        // gates its own region. Region outages do not gate publishes — the
        // broker endpoint is modeled as reachable even when app replicas in
        // the region are dark (matching the pre-engine queue semantics).
        faults.queue_down(at, store) || faults.replica_crashed(at, store, region)
    }

    fn commit_latency(&self, rng: &mut SimRng) -> Duration {
        self.profile.local_publish.sample_duration(rng)
    }

    fn drop_probability(&self, faults: &FaultPlan, at: SimTime, store: &str) -> f64 {
        faults.delivery_drop(at, store)
    }

    fn retry_backoff(&self, rng: &mut SimRng) -> Duration {
        self.redelivery.borrow().sample_duration(rng)
    }

    fn propagation_lag(
        &self,
        rng: &mut SimRng,
        net: &Network,
        _faults: &FaultPlan,
        _at: SimTime,
        _store: &str,
        origin: Region,
        dest: Region,
    ) -> Duration {
        if dest == origin {
            self.profile.local_delivery.sample_duration(rng)
        } else {
            let extra = self.profile.delivery.sample_duration(rng);
            let transit = net.delay(rng, origin, dest).mul_f64(self.profile.rtt_hops);
            extra + transit
        }
    }

    fn send_suppressed(
        &self,
        faults: &FaultPlan,
        at: SimTime,
        store: &str,
        origin: Region,
        dest: Region,
    ) -> bool {
        faults.delivery_paused(at, store, dest)
            || faults.queue_down(at, store)
            || (dest != origin && faults.link_blocked(at, origin, dest))
    }

    fn on_apply(&self, ctx: &ApplyCtx<'_>) {
        // Superseded arrivals cannot occur for queue keys (message ids are
        // unique), but hint-flush plus anti-entropy can race to deliver the
        // same record: only the first arrival notifies observers.
        if !ctx.newly_inserted {
            return;
        }
        let msg = QueueMessage {
            id: ctx.version,
            payload: ctx.bytes.clone(),
            published_at: ctx.committed_at,
        };
        {
            let mut pubsub = self.pubsub.borrow_mut();
            let Some(rs) = pubsub.get_mut(&ctx.region) else {
                return;
            };
            rs.subscribers.retain(|sub| sub.send(msg.clone()).is_ok());
            // Each consumer group receives the message exactly once: hand it
            // to a waiting consumer if any, else queue it for the next take.
            for group in rs.groups.values_mut() {
                hand_to_group(group, msg.clone());
            }
        }
        if let Some(p) = ctx.probe {
            p(&VisibilityEvent::QueueDelivered {
                store: ctx.store.to_string(),
                region: ctx.region,
                id: ctx.version,
                at: ctx.at,
            });
        }
    }
}

/// Hands `msg` to the first live waiter of a group, or queues it as pending.
pub(crate) fn hand_to_group(group: &mut GroupState, msg: QueueMessage) {
    let mut undelivered = Some(msg);
    while let Some(m) = undelivered.take() {
        // lint: allow(scheduler-bypass, FIFO hand-off to consumer-group waiters is
        // queue-delivery semantics — the receiving task still runs only when the
        // executor's Schedule picks it)
        match group.waiters.pop_front() {
            Some(tx) => {
                if let Err(back) = tx.send(m) {
                    undelivered = Some(back); // dead waiter, try next
                }
            }
            None => {
                group.pending.push_back(m);
            }
        }
    }
}

/// Needed by [`crate::engine::Engine::new`] to build the RNG stream name;
/// kept here so the engine stays family-agnostic while the `"kv:{name}"` /
/// `"queue:{name}"` stream names reproduce the pre-engine seeds.
pub(crate) fn stream_name<S: Substrate>(substrate: &S, store: &str) -> String {
    format!("{}:{}", substrate.rng_stream(), store)
}

//! Simulated Amazon MQ (managed broker with cross-region forwarding) and its
//! Antipode shim.
//!
//! Delivery ≈ 1 s: slow enough that MySQL/DynamoDB/Redis usually replicate
//! first (Table 1's 7–13 % row), but not S3.

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::queue_facade;
use crate::replica::StoreError;
use crate::shim::{ShimError, ShimSubscription};

queue_facade! {
    /// A simulated AMQ broker pair with forwarding between regions.
    store Amq(profile: crate::profiles::amq);
    /// The Antipode shim for [`Amq`].
    shim AmqShim;
}

impl Amq {
    /// Send a message (baseline path, no lineage).
    pub async fn send(&self, region: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.queue.publish(region, payload).await
    }

    /// Consume messages delivered in a region.
    pub fn consume(
        &self,
        region: Region,
    ) -> Result<antipode_sim::sync::Receiver<crate::queue::QueueMessage>, StoreError> {
        self.queue.subscribe(region)
    }
}

impl AmqShim {
    /// Lineage-propagating send.
    pub async fn send(
        &self,
        region: Region,
        payload: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.publish(region, payload, lineage).await
    }

    /// Lineage-decoding consumer.
    pub fn consume(&self, region: Region) -> Result<ShimSubscription, ShimError> {
        self.inner.subscribe(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;
    use std::time::Duration;

    #[test]
    fn delivery_is_around_a_second() {
        let sim = Sim::new(61);
        let net = Rc::new(Network::global_triangle());
        let amq = Amq::new(&sim, net, "broker", &[EU, US]);
        let shim = AmqShim::new(&amq);
        let elapsed = sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = shim.consume(US).unwrap();
                let mut lin = Lineage::new(LineageId(1));
                let start = sim.now();
                shim.send(EU, Bytes::from_static(b"m"), &mut lin)
                    .await
                    .unwrap();
                sub.recv().await.unwrap().unwrap();
                sim.now().since(start)
            }
        });
        assert!(
            (Duration::from_millis(300)..Duration::from_secs(10)).contains(&elapsed),
            "AMQ delivery {elapsed:?}"
        );
    }
}

//! Simulated Amazon MQ (managed broker with cross-region forwarding) and its
//! Antipode shim.
//!
//! Delivery ≈ 1 s: slow enough that MySQL/DynamoDB/Redis usually replicate
//! first (Table 1's 7–13 % row), but not S3.

use std::rc::Rc;

use antipode::wait::{LocalBoxFuture, WaitError, WaitTarget};
use antipode_lineage::{Lineage, WriteId};
use antipode_sim::net::Network;
use antipode_sim::{Region, Sim};
use bytes::Bytes;

use crate::profiles;
use crate::queue::{QueueProfile, QueueStore};
use crate::replica::StoreError;
use crate::shim::{QueueShim, ShimError, ShimSubscription};

/// A simulated AMQ broker pair with forwarding between regions.
#[derive(Clone)]
pub struct Amq {
    queue: QueueStore,
}

impl Amq {
    /// Creates a broker with the calibrated AMQ profile.
    pub fn new(sim: &Sim, net: Rc<Network>, name: impl Into<String>, regions: &[Region]) -> Self {
        Self::with_profile(sim, net, name, regions, profiles::amq())
    }

    /// Creates a broker with a custom profile.
    pub fn with_profile(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        profile: QueueProfile,
    ) -> Self {
        Amq {
            queue: QueueStore::new(sim, net, name, regions, profile),
        }
    }

    /// Send a message (baseline path, no lineage).
    pub async fn send(&self, region: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.queue.publish(region, payload).await
    }

    /// Consume messages delivered in a region.
    pub fn consume(
        &self,
        region: Region,
    ) -> Result<antipode_sim::sync::Receiver<crate::queue::QueueMessage>, StoreError> {
        self.queue.subscribe(region)
    }

    /// The underlying queue store.
    pub fn queue(&self) -> &QueueStore {
        &self.queue
    }
}

/// The Antipode shim for [`Amq`].
#[derive(Clone)]
pub struct AmqShim {
    inner: QueueShim,
}

impl AmqShim {
    /// Wraps a broker.
    pub fn new(amq: &Amq) -> Self {
        AmqShim {
            inner: QueueShim::new(amq.queue.clone()),
        }
    }

    /// Lineage-propagating send.
    pub async fn send(
        &self,
        region: Region,
        payload: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.publish(region, payload, lineage).await
    }

    /// Lineage-decoding consumer.
    pub fn consume(&self, region: Region) -> Result<ShimSubscription, ShimError> {
        self.inner.subscribe(region)
    }
}

impl WaitTarget for AmqShim {
    fn datastore_name(&self) -> &str {
        self.inner.datastore_name()
    }
    fn wait<'a>(
        &'a self,
        write: &'a WriteId,
        region: Region,
    ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
        self.inner.wait(write, region)
    }
    fn is_visible(&self, write: &WriteId, region: Region) -> bool {
        self.inner.is_visible(write, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use std::time::Duration;

    #[test]
    fn delivery_is_around_a_second() {
        let sim = Sim::new(61);
        let net = Rc::new(Network::global_triangle());
        let amq = Amq::new(&sim, net, "broker", &[EU, US]);
        let shim = AmqShim::new(&amq);
        let elapsed = sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = shim.consume(US).unwrap();
                let mut lin = Lineage::new(LineageId(1));
                let start = sim.now();
                shim.send(EU, Bytes::from_static(b"m"), &mut lin)
                    .await
                    .unwrap();
                sub.recv().await.unwrap().unwrap();
                sim.now().since(start)
            }
        });
        assert!(
            (Duration::from_millis(300)..Duration::from_secs(10)).contains(&elapsed),
            "AMQ delivery {elapsed:?}"
        );
    }
}

//! The shared replication engine underlying both store families.
//!
//! One [`Engine`] owns everything [`crate::replica::KvStore`] and
//! [`crate::queue::QueueStore`] used to implement twice: per-region replica
//! state with crash epochs, the commit → fan-out → apply pipeline with
//! fault-plan consultation at every step, visibility watermarks and waiter
//! registration/cancellation, [`crate::probe::VisibilityProbe`] emission,
//! WAL append/replay, hinted-handoff queuing/flush, and the anti-entropy
//! sweep hooks ([`crate::recovery`], [`crate::repair`] extend the engine
//! with the recovery plane — generically, for both families).
//!
//! Family-specific behavior is delegated to the engine's
//! [`crate::substrate::Substrate`]: admission policy (reject vs block on
//! faults), latency sampling from the family profile, which fault predicates
//! gate a send, and the local reaction to an apply (probe emission vs
//! pub/sub fan-out).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use antipode_sim::net::Network;
use antipode_sim::rng::SimRng;
use antipode_sim::sync::{oneshot, OneSender};
use antipode_sim::{Region, Sim, SimTime};
use bytes::Bytes;

use crate::probe::{VisibilityEvent, VisibilityProbe};
use crate::recovery::{Hint, RecoveryConfig, WalEntry};
use crate::substrate::{stream_name, Admission, ApplyCtx, RetryStyle, StoreError, Substrate};

/// A record as held by one engine replica. The KV facade re-exposes this as
/// [`crate::replica::StoredValue`]; the queue facade reads it back as a
/// [`crate::queue::QueueMessage`].
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// The version the origin assigned (message id for the queue family).
    pub version: u64,
    /// The stored bytes.
    pub bytes: Bytes,
    /// Virtual time this record became visible at this replica.
    pub visible_at: SimTime,
    /// Virtual time the write committed at its origin (preserved across
    /// hint flushes, WAL replay, and anti-entropy back-fills).
    pub committed_at: SimTime,
}

pub(crate) struct Waiter {
    pub(crate) key: String,
    pub(crate) version: u64,
    /// Resolved `Ok(())` when the awaited version lands, `Err(Unavailable)`
    /// when the replica goes dark (region outage or replica crash) — so
    /// waiters subscribed before a fault window never leak past it.
    pub(crate) tx: OneSender<Result<(), StoreError>>,
}

#[derive(Default)]
pub(crate) struct ReplicaState {
    pub(crate) data: BTreeMap<String, Record>,
    pub(crate) waiters: Vec<Waiter>,
    /// Deterministic per-replica write-ahead log: every apply that changed
    /// the memtable, in apply order — plus, for deferred-apply families
    /// (queues), the commit itself. Crash-restart replays it (see
    /// [`crate::recovery`]); disabled per [`RecoveryConfig`].
    pub(crate) wal: Vec<WalEntry>,
    /// Newest logged version per key, so the commit-time append and the
    /// local delivery's apply never double-log one publish.
    pub(crate) wal_index: BTreeMap<String, u64>,
    /// Bumped on every crash; in-flight sends capture the origin epoch and
    /// abort when it moved (the sending process died).
    pub(crate) epoch: u64,
}

impl ReplicaState {
    /// Appends `entry` to the WAL unless this key is already logged at
    /// `entry.version` or newer. The index survives crashes with the WAL
    /// (both model durable storage).
    pub(crate) fn wal_append(&mut self, entry: WalEntry) {
        let logged = self
            .wal_index
            .get(&entry.key)
            .map(|v| *v >= entry.version)
            .unwrap_or(false);
        if !logged {
            self.wal_index.insert(entry.key.clone(), entry.version);
            self.wal.push(entry);
        }
    }
}

pub(crate) struct EngineInner<S: Substrate> {
    pub(crate) name: String,
    pub(crate) sim: Sim,
    pub(crate) net: Rc<Network>,
    pub(crate) regions: Vec<Region>,
    pub(crate) substrate: S,
    pub(crate) replicas: RefCell<BTreeMap<Region, ReplicaState>>,
    pub(crate) next_version: Cell<u64>,
    pub(crate) rng: RefCell<SimRng>,
    /// The simulation-wide chaos schedule; every fault the engine observes
    /// (drops, stalls, partitions, outages, congestion, crashes) comes from
    /// here.
    pub(crate) faults: antipode_sim::fault::FaultPlan,
    /// Recovery knobs (WAL, hinted handoff); see [`crate::recovery`].
    pub(crate) recovery: Cell<RecoveryConfig>,
    /// Hinted-handoff queue: sends suppressed by a fault, parked at their
    /// origin until the path heals. Flushed by the recovery monitor.
    pub(crate) hints: RefCell<Vec<Hint>>,
    /// Optional observation hook for dynamic analysis (race detection).
    pub(crate) probe: RefCell<Option<VisibilityProbe>>,
    /// Sends currently in flight (fan-out tasks that have not terminated).
    pub(crate) inflight: Cell<usize>,
    /// When set, a commit that would push `inflight` past this bound is
    /// rejected with [`StoreError::Overloaded`] — simple back-pressure.
    pub(crate) capacity: Cell<Option<usize>>,
}

/// The shared replication engine; see the module docs. Parameterized by the
/// store family's [`Substrate`].
pub struct Engine<S: Substrate> {
    pub(crate) inner: Rc<EngineInner<S>>,
}

impl<S: Substrate> Clone for Engine<S> {
    fn clone(&self) -> Self {
        Engine {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<S: Substrate> Engine<S> {
    /// Creates an engine named `name` with one replica per region (the first
    /// region acts as the primary) and spawns its recovery monitor.
    pub fn new(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        substrate: S,
    ) -> Self {
        let name = name.into();
        assert!(!regions.is_empty(), "a store needs at least one region");
        let rng = RefCell::new(sim.rng(&stream_name(&substrate, &name)));
        let replicas = regions
            .iter()
            .map(|r| (*r, ReplicaState::default()))
            .collect::<BTreeMap<_, _>>();
        let engine = Engine {
            inner: Rc::new(EngineInner {
                name,
                sim: sim.clone(),
                net,
                regions: regions.to_vec(),
                substrate,
                replicas: RefCell::new(replicas),
                next_version: Cell::new(1),
                rng,
                faults: sim.faults(),
                recovery: Cell::new(RecoveryConfig::default()),
                hints: RefCell::new(Vec::new()),
                probe: RefCell::new(None),
                inflight: Cell::new(0),
                capacity: Cell::new(None),
            }),
        };
        crate::recovery::spawn_monitor(&engine);
        engine
    }

    pub(crate) fn name(&self) -> &str {
        &self.inner.name
    }

    pub(crate) fn regions(&self) -> &[Region] {
        &self.inner.regions
    }

    pub(crate) fn primary(&self) -> Region {
        self.inner.regions[0]
    }

    pub(crate) fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    pub(crate) fn net(&self) -> &Rc<Network> {
        &self.inner.net
    }

    pub(crate) fn faults(&self) -> &antipode_sim::fault::FaultPlan {
        &self.inner.faults
    }

    pub(crate) fn substrate(&self) -> &S {
        &self.inner.substrate
    }

    pub(crate) fn rng(&self) -> &RefCell<SimRng> {
        &self.inner.rng
    }

    pub(crate) fn set_recovery(&self, cfg: RecoveryConfig) {
        self.inner.recovery.set(cfg);
    }

    pub(crate) fn recovery_config(&self) -> RecoveryConfig {
        self.inner.recovery.get()
    }

    pub(crate) fn set_probe(&self, probe: Option<VisibilityProbe>) {
        *self.inner.probe.borrow_mut() = probe;
    }

    pub(crate) fn emit(&self, event: VisibilityEvent) {
        if let Some(p) = self.inner.probe.borrow().clone() {
            p(&event);
        }
    }

    pub(crate) fn set_send_capacity(&self, cap: Option<usize>) {
        self.inner.capacity.set(cap);
    }

    pub(crate) fn check_region(&self, region: Region) -> Result<(), StoreError> {
        if self.inner.replicas.borrow().contains_key(&region) {
            Ok(())
        } else {
            Err(StoreError::NoSuchRegion(region))
        }
    }

    /// Like [`Engine::check_region`], but also rejects regions the substrate
    /// considers gated by the fault plan at `now`.
    pub(crate) fn check_available(&self, region: Region) -> Result<(), StoreError> {
        self.check_region(region)?;
        let now = self.inner.sim.now();
        if self
            .inner
            .substrate
            .op_blocked(&self.inner.faults, now, &self.inner.name, region)
        {
            return Err(StoreError::Unavailable {
                store: self.inner.name.clone(),
                region,
            });
        }
        Ok(())
    }

    /// Commits a write at `origin` and fans out one send per replica.
    ///
    /// `key: None` derives the key from the assigned version (queue family).
    /// Admission follows the substrate: `Reject` fails fast on a gated
    /// region; `Block` parks until the fault plan clears. A crash of the
    /// origin replica *during* the commit latency surfaces as
    /// [`StoreError::CrashedEpoch`]; a full send queue as
    /// [`StoreError::Overloaded`].
    pub(crate) async fn commit(
        &self,
        origin: Region,
        key: Option<&str>,
        value: Bytes,
    ) -> Result<u64, StoreError> {
        self.check_region(origin)?;
        match self.inner.substrate.admission() {
            Admission::Reject => self.check_available(origin)?,
            Admission::Block => {
                let eng = self.clone();
                self.inner
                    .faults
                    .until_clear(&self.inner.sim, move |at| {
                        eng.inner.substrate.op_blocked(
                            &eng.inner.faults,
                            at,
                            &eng.inner.name,
                            origin,
                        )
                    })
                    .await;
            }
        }
        if let Some(cap) = self.inner.capacity.get() {
            if self.inner.inflight.get() >= cap {
                return Err(StoreError::Overloaded {
                    store: self.inner.name.clone(),
                });
            }
        }
        let epoch0 = self.replica_epoch(origin);
        let commit = {
            let mut rng = self.inner.rng.borrow_mut();
            self.inner.substrate.commit_latency(&mut rng)
        };
        self.inner.sim.sleep(commit).await;
        if self.replica_epoch(origin) != epoch0 {
            // The origin replica crash-restarted mid-commit: the committing
            // process died before assigning a version.
            return Err(StoreError::CrashedEpoch {
                store: self.inner.name.clone(),
                region: origin,
            });
        }
        let version = self.inner.next_version.get();
        self.inner.next_version.set(version + 1);
        let committed_at = self.inner.sim.now();
        // One shared key allocation for the whole fan-out (and `Bytes`
        // clones are refcount bumps), so a commit's per-destination cost is
        // independent of key and value size.
        let key: Rc<str> = match key {
            Some(k) => Rc::from(k),
            None => Rc::from(self.inner.substrate.derived_key(version).as_str()),
        };
        let applies_at_commit = self.inner.substrate.origin_applies_at_commit();
        if applies_at_commit {
            self.apply(origin, &key, version, value.clone(), committed_at);
        } else if self.inner.recovery.get().wal {
            // Deferred-apply families (queues) become *visible* only when the
            // local delivery lands, but the commit is the durability point:
            // log it at the origin now so a crash that aborts the in-flight
            // deliveries still leaves the publish recoverable — WAL replay
            // restores the origin copy and anti-entropy back-fills the rest.
            let mut replicas = self.inner.replicas.borrow_mut();
            if let Some(state) = replicas.get_mut(&origin) {
                state.wal_append(WalEntry {
                    key: key.to_string(),
                    version,
                    bytes: value.clone(),
                    visible_at: committed_at,
                    committed_at,
                });
            }
        }
        for &dest in &self.inner.regions {
            if dest != origin || !applies_at_commit {
                self.spawn_send(
                    origin,
                    dest,
                    Rc::clone(&key),
                    version,
                    value.clone(),
                    committed_at,
                );
            }
        }
        Ok(version)
    }

    /// One asynchronous send: sample/retry per the substrate's
    /// [`RetryStyle`], then hand the record to [`Engine::finish_send`].
    fn spawn_send(
        &self,
        origin: Region,
        dest: Region,
        key: Rc<str>,
        version: u64,
        value: Bytes,
        committed_at: SimTime,
    ) {
        let eng = self.clone();
        let origin_epoch = self.replica_epoch(origin);
        self.inner.inflight.set(self.inner.inflight.get() + 1);
        self.inner.sim.spawn(async move {
            match eng.inner.substrate.retry_style() {
                RetryStyle::ResampleLag => loop {
                    let now = eng.inner.sim.now();
                    let drop_p = eng.inner.substrate.drop_probability(
                        &eng.inner.faults,
                        now,
                        &eng.inner.name,
                    );
                    let (dropped, backoff, lag) = {
                        let mut rng = eng.inner.rng.borrow_mut();
                        let dropped = {
                            use rand::Rng;
                            drop_p > 0.0 && rng.random::<f64>() < drop_p
                        };
                        let backoff = eng.inner.substrate.retry_backoff(&mut rng);
                        let lag = eng.inner.substrate.propagation_lag(
                            &mut rng,
                            &eng.inner.net,
                            &eng.inner.faults,
                            now,
                            &eng.inner.name,
                            origin,
                            dest,
                        );
                        (dropped, backoff, lag)
                    };
                    if dropped {
                        eng.inner.sim.sleep(backoff).await;
                        continue;
                    }
                    eng.inner.sim.sleep(lag).await;
                    break;
                },
                RetryStyle::LagOnce => {
                    let lag = {
                        let now = eng.inner.sim.now();
                        let mut rng = eng.inner.rng.borrow_mut();
                        eng.inner.substrate.propagation_lag(
                            &mut rng,
                            &eng.inner.net,
                            &eng.inner.faults,
                            now,
                            &eng.inner.name,
                            origin,
                            dest,
                        )
                    };
                    eng.inner.sim.sleep(lag).await;
                    loop {
                        let now = eng.inner.sim.now();
                        let drop_p = eng.inner.substrate.drop_probability(
                            &eng.inner.faults,
                            now,
                            &eng.inner.name,
                        );
                        let (dropped, backoff) = {
                            let mut rng = eng.inner.rng.borrow_mut();
                            let dropped = {
                                use rand::Rng;
                                drop_p > 0.0 && rng.random::<f64>() < drop_p
                            };
                            let backoff = eng.inner.substrate.retry_backoff(&mut rng);
                            (dropped, backoff)
                        };
                        if !dropped {
                            break;
                        }
                        eng.inner.sim.sleep(backoff).await;
                    }
                }
            }
            eng.finish_send(
                origin,
                origin_epoch,
                dest,
                key,
                version,
                value,
                committed_at,
            );
            eng.inner.inflight.set(eng.inner.inflight.get() - 1);
        });
    }

    /// Terminal step of one send: apply at the destination when the path is
    /// healthy, or queue a hinted-handoff entry at the origin when a fault
    /// suppresses it (stall, partition, pause, outage, crashed destination).
    /// With handoff disabled the suppressed send is dropped outright — the
    /// ablation that shows the recovery plane is load-bearing.
    #[allow(clippy::too_many_arguments)]
    fn finish_send(
        &self,
        origin: Region,
        origin_epoch: u64,
        dest: Region,
        key: Rc<str>,
        version: u64,
        value: Bytes,
        committed_at: SimTime,
    ) {
        if self.replica_epoch(origin) != origin_epoch {
            // The origin replica crash-restarted while this send was in
            // flight: the sending process died with it. The origin copy is in
            // the WAL; remote copies are recovered by anti-entropy repair.
            return;
        }
        let now = self.inner.sim.now();
        let suppressed = self.inner.substrate.send_suppressed(
            &self.inner.faults,
            now,
            &self.inner.name,
            origin,
            dest,
        ) || self
            .inner
            .faults
            .replica_crashed(now, &self.inner.name, dest);
        if !suppressed {
            self.apply(dest, &key, version, value, committed_at);
        } else if self.inner.recovery.get().hinted_handoff {
            self.inner.hints.borrow_mut().push(Hint {
                origin,
                dest,
                key,
                version,
                bytes: value,
                committed_at,
            });
        }
    }

    /// Applies a record at a replica, waking matured waiters and invoking
    /// the substrate's reaction. Out-of-order (superseded) arrivals still
    /// satisfy waiters but do not clobber newer data. Records addressed to a
    /// crashed replica are dropped (the process is dead); anti-entropy
    /// repair back-fills them after restart.
    pub(crate) fn apply(
        &self,
        region: Region,
        key: &str,
        version: u64,
        value: Bytes,
        committed_at: SimTime,
    ) {
        let now = self.inner.sim.now();
        if self
            .inner
            .faults
            .replica_crashed(now, &self.inner.name, region)
        {
            return;
        }
        let wal_enabled = self.inner.recovery.get().wal;
        let (newly_inserted, watermark) = {
            let mut replicas = self.inner.replicas.borrow_mut();
            // Sends only target configured replicas; treat a miss as a
            // dropped message rather than tearing the run down.
            let Some(state) = replicas.get_mut(&region) else {
                return;
            };
            let newer_exists = state
                .data
                .get(key)
                .map(|v| v.version >= version)
                .unwrap_or(false);
            if !newer_exists {
                state.data.insert(
                    key.to_string(),
                    Record {
                        version,
                        bytes: value.clone(),
                        visible_at: now,
                        committed_at,
                    },
                );
                if wal_enabled {
                    state.wal_append(WalEntry {
                        key: key.to_string(),
                        version,
                        bytes: value.clone(),
                        visible_at: now,
                        committed_at,
                    });
                }
            }
            let watermark = state.data.get(key).map(|v| v.version).unwrap_or(version);
            let mut i = 0;
            while i < state.waiters.len() {
                if state.waiters[i].key == key && state.waiters[i].version <= watermark {
                    let w = state.waiters.swap_remove(i);
                    let _ = w.tx.send(Ok(()));
                } else {
                    i += 1;
                }
            }
            (!newer_exists, watermark)
        };
        let probe = self.inner.probe.borrow().clone();
        self.inner.substrate.on_apply(&ApplyCtx {
            store: &self.inner.name,
            region,
            key,
            version,
            bytes: &value,
            committed_at,
            newly_inserted,
            watermark,
            at: now,
            probe: probe.as_ref(),
        });
    }

    /// Zero-latency read of one replica record.
    pub(crate) fn record(&self, region: Region, key: &str) -> Option<Record> {
        self.inner
            .replicas
            .borrow()
            .get(&region)?
            .data
            .get(key)
            .cloned()
    }

    /// Whether `key` has reached at least `version` at `region`.
    pub(crate) fn is_visible(&self, region: Region, key: &str, version: u64) -> bool {
        self.record(region, key)
            .map(|v| v.version >= version)
            .unwrap_or(false)
    }

    /// Resolves once `key` reaches at least `version` at `region`,
    /// subscribing a waiter rather than polling.
    ///
    /// Under `Reject` admission a dark replica surfaces
    /// [`StoreError::Unavailable`] (re-checked every lap so a fresh
    /// subscription against a dark replica never parks forever). Under
    /// `Block` admission waits never error on faults: a waiter cancelled by
    /// a dark-replica edge silently resubscribes and resolves when the
    /// record eventually lands — queue consumers ride out broker windows.
    pub(crate) async fn wait_visible(
        &self,
        region: Region,
        key: &str,
        version: u64,
    ) -> Result<(), StoreError> {
        loop {
            if self.inner.substrate.admission() == Admission::Reject {
                self.check_available(region)?;
            }
            let rx = {
                let mut replicas = self.inner.replicas.borrow_mut();
                let state = replicas
                    .get_mut(&region)
                    .ok_or(StoreError::NoSuchRegion(region))?;
                let visible = state
                    .data
                    .get(key)
                    .map(|v| v.version >= version)
                    .unwrap_or(false);
                if visible {
                    return Ok(());
                }
                let (tx, rx) = oneshot();
                state.waiters.push(Waiter {
                    key: key.to_string(),
                    version,
                    tx,
                });
                rx
            };
            match rx.await {
                Ok(Ok(())) => return Ok(()),
                Ok(Err(e)) => match self.inner.substrate.admission() {
                    // The replica went dark while we were subscribed: surface
                    // the outage so barrier retry policies can re-arm.
                    Admission::Reject => return Err(e),
                    // Blocking families ride out the window: resubscribe.
                    Admission::Block => continue,
                },
                // A dropped sender (cannot happen today, but harmless)
                // retries.
                Err(_) => continue,
            }
        }
    }

    /// The crash epoch of a replica (bumped on every
    /// [`antipode_sim::fault::FaultKind::ReplicaCrash`] entry).
    pub(crate) fn replica_epoch(&self, region: Region) -> u64 {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.epoch)
            .unwrap_or(0)
    }

    /// Number of write-ahead-log entries at a replica (diagnostics).
    pub(crate) fn wal_len(&self, region: Region) -> usize {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.wal.len())
            .unwrap_or(0)
    }

    /// Number of pending visibility waiters at a replica (diagnostics).
    pub(crate) fn waiter_count(&self, region: Region) -> usize {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.waiters.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::KvProfile;
    use crate::substrate::KvSubstrate;
    use antipode_sim::dist::Dist;
    use antipode_sim::fault::FaultKind;
    use antipode_sim::net::regions::{EU, US};

    fn setup() -> (Sim, Engine<KvSubstrate>) {
        let sim = Sim::new(9);
        let net = Rc::new(Network::global_triangle());
        let profile = KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        };
        let eng = Engine::new(&sim, net, "db", &[EU, US], KvSubstrate::new(profile));
        (sim, eng)
    }

    #[test]
    fn overloaded_when_capacity_exhausted() {
        let (sim, eng) = setup();
        eng.set_send_capacity(Some(0));
        let e = eng.clone();
        sim.block_on(async move {
            let err = e.commit(EU, Some("k"), Bytes::new()).await.unwrap_err();
            assert_eq!(err, StoreError::Overloaded { store: "db".into() });
            e.set_send_capacity(None);
            e.commit(EU, Some("k"), Bytes::new()).await.unwrap();
        });
    }

    #[test]
    fn crash_mid_commit_surfaces_crashed_epoch() {
        let (sim, eng) = setup();
        // The commit sleeps 1ms; crash the origin inside that window. The
        // pre-commit availability check at t=0 passes (window starts later).
        sim.faults().schedule(
            SimTime::from_nanos(500_000),
            SimTime::from_secs(2),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: EU,
            },
        );
        let e = eng.clone();
        sim.block_on(async move {
            let err = e.commit(EU, Some("k"), Bytes::new()).await.unwrap_err();
            assert!(
                matches!(err, StoreError::CrashedEpoch { region, .. } if region == EU),
                "got {err:?}"
            );
        });
    }

    #[test]
    fn inflight_counter_returns_to_zero() {
        let (sim, eng) = setup();
        let e = eng.clone();
        sim.spawn(async move {
            e.commit(EU, Some("k"), Bytes::new()).await.unwrap();
        });
        sim.run();
        assert_eq!(eng.inner.inflight.get(), 0);
        assert!(eng.is_visible(US, "k", 1));
    }
}

//! The shared replication engine underlying both store families.
//!
//! One [`Engine`] owns everything [`crate::replica::KvStore`] and
//! [`crate::queue::QueueStore`] used to implement twice: per-region replica
//! state with crash epochs, the commit → fan-out → apply pipeline with
//! fault-plan consultation at every step, visibility watermarks and waiter
//! registration/cancellation, [`crate::probe::VisibilityProbe`] emission,
//! WAL append/replay, hinted-handoff queuing/flush, and the anti-entropy
//! sweep hooks ([`crate::recovery`], [`crate::repair`] extend the engine
//! with the recovery plane — generically, for both families).
//!
//! Family-specific behavior is delegated to the engine's
//! [`crate::substrate::Substrate`]: admission policy (reject vs block on
//! faults), latency sampling from the family profile, which fault predicates
//! gate a send, and the local reaction to an apply (probe emission vs
//! pub/sub fan-out).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use antipode_sim::net::Network;
use antipode_sim::rng::SimRng;
use antipode_sim::sync::{oneshot, OneSender};
use antipode_sim::{Region, Sim, SimTime};
use bytes::Bytes;

use crate::batch::PairQueue;
use crate::probe::{VisibilityEvent, VisibilityProbe};
use crate::recovery::{Hint, RecoveryConfig, WalEntry};
use crate::stats;
use crate::substrate::{stream_name, Admission, ApplyCtx, StoreError, Substrate};
use crate::wal::WalLog;

/// A record as held by one engine replica. The KV facade re-exposes this as
/// [`crate::replica::StoredValue`]; the queue facade reads it back as a
/// [`crate::queue::QueueMessage`].
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// The version the origin assigned (message id for the queue family).
    pub version: u64,
    /// The stored bytes.
    pub bytes: Bytes,
    /// Virtual time this record became visible at this replica.
    pub visible_at: SimTime,
    /// Virtual time the write committed at its origin (preserved across
    /// hint flushes, WAL replay, and anti-entropy back-fills).
    pub committed_at: SimTime,
}

pub(crate) struct Waiter {
    pub(crate) key: Rc<str>,
    pub(crate) version: u64,
    /// Resolved `Ok(())` when the awaited version lands, `Err(Unavailable)`
    /// when the replica goes dark (region outage or replica crash) — so
    /// waiters subscribed before a fault window never leak past it.
    pub(crate) tx: OneSender<Result<(), StoreError>>,
}

/// One delivery handed to [`Engine::apply_batch`]: a send entry that
/// completed transit. `key`/`bytes` are refcount bumps off the commit's
/// allocations, so a steady-state apply allocates nothing.
pub(crate) struct ApplyItem {
    pub(crate) key: Rc<str>,
    pub(crate) version: u64,
    pub(crate) bytes: Bytes,
    pub(crate) committed_at: SimTime,
    /// Origin crash epoch captured at commit (checked per batch before
    /// delivery; unused on the direct-apply paths).
    pub(crate) origin_epoch: u64,
}

/// Integrity standing of one replica, as judged by WAL verification (crash
/// replay or a scrub sweep). Exposed through
/// [`crate::replica::KvStore::replica_health`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// The replica's log verified clean (torn tails count as clean after
    /// truncation — the loss is bounded and known).
    #[default]
    Healthy,
    /// WAL verification found mid-log corruption the replica cannot bound:
    /// reads are refused with [`StoreError::IntegrityFault`] until
    /// anti-entropy back-fills the replica and it rejoins with a bumped
    /// epoch (see [`crate::repair`]).
    Tainted,
}

#[derive(Default)]
pub(crate) struct ReplicaState {
    pub(crate) data: BTreeMap<Rc<str>, Record>,
    pub(crate) waiters: Vec<Waiter>,
    /// Deterministic per-replica write-ahead log: every apply that changed
    /// the memtable, in apply order — plus, for deferred-apply families
    /// (queues), the commit itself. Framed and checksummed per record (see
    /// [`crate::wal`]); crash-restart replays the verified prefix (see
    /// [`crate::recovery`]); disabled per [`RecoveryConfig`].
    pub(crate) wal: WalLog,
    /// Newest logged version per key, so the commit-time append and the
    /// local delivery's apply never double-log one publish. Rebuilt from
    /// the surviving records whenever replay truncates the log, so the
    /// index never vouches for a frame that corruption took.
    pub(crate) wal_index: BTreeMap<Rc<str>, u64>,
    /// Bumped on every crash; in-flight sends capture the origin epoch and
    /// abort when it moved (the sending process died).
    pub(crate) epoch: u64,
    /// Quarantine flag; see [`ReplicaHealth`].
    pub(crate) health: ReplicaHealth,
}

impl ReplicaState {
    /// Appends `entry` to the WAL unless this key is already logged at
    /// `entry.version` or newer. The index survives crashes with the WAL
    /// (both model durable storage). Keys are shared `Rc<str>`s, so the
    /// index entry is a refcount bump, not a string copy.
    pub(crate) fn wal_append(&mut self, entry: WalEntry) {
        match self.wal_index.entry(Rc::clone(&entry.key)) {
            std::collections::btree_map::Entry::Occupied(mut logged) => {
                if *logged.get() >= entry.version {
                    return;
                }
                logged.insert(entry.version);
            }
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(entry.version);
            }
        }
        let framed = self.wal.append(entry);
        stats::count_wal_append(framed as u64);
    }

    /// Appends without consulting the dedupe index. Sound only for appends
    /// that follow a memtable advancement in a family that never pre-logs
    /// at commit (`origin_applies_at_commit()`): there every logged version
    /// tracks the data version exactly, so the index could never dedupe —
    /// its tree walk is pure hot-path overhead. Deferred-apply families
    /// (queues) log the commit before the delivery applies and must go
    /// through [`ReplicaState::wal_append`].
    pub(crate) fn wal_append_fresh(&mut self, entry: WalEntry) {
        let framed = self.wal.append(entry);
        stats::count_wal_append(framed as u64);
    }

    /// Rebuilds the dedupe index from an authoritative record set — called
    /// whenever the log itself was truncated or rewritten, so the index
    /// never vouches for a version the log no longer holds (a stale entry
    /// would make the dedupe append skip re-logging it, turning a bounded
    /// truncation into a permanent durability hole on the next crash).
    pub(crate) fn rebuild_wal_index<'a>(&mut self, entries: impl Iterator<Item = &'a WalEntry>) {
        self.wal_index.clear();
        for entry in entries {
            let logged = self
                .wal_index
                .entry(Rc::clone(&entry.key))
                .or_insert(entry.version);
            if *logged < entry.version {
                *logged = entry.version;
            }
        }
    }
}

pub(crate) struct EngineInner<S: Substrate> {
    pub(crate) name: String,
    pub(crate) sim: Sim,
    pub(crate) net: Rc<Network>,
    pub(crate) regions: Vec<Region>,
    pub(crate) substrate: S,
    pub(crate) replicas: RefCell<BTreeMap<Region, ReplicaState>>,
    pub(crate) next_version: Cell<u64>,
    pub(crate) rng: RefCell<SimRng>,
    /// The simulation-wide chaos schedule; every fault the engine observes
    /// (drops, stalls, partitions, outages, congestion, crashes) comes from
    /// here.
    pub(crate) faults: antipode_sim::fault::FaultPlan,
    /// Recovery knobs (WAL, hinted handoff); see [`crate::recovery`].
    pub(crate) recovery: Cell<RecoveryConfig>,
    /// Hinted-handoff queue: sends suppressed by a fault, parked at their
    /// origin until the path heals. Flushed by the recovery monitor.
    pub(crate) hints: RefCell<Vec<Hint>>,
    /// Optional observation hook for dynamic analysis (race detection).
    pub(crate) probe: RefCell<Option<VisibilityProbe>>,
    /// Sends currently in flight (queued entries that have not reached their
    /// terminal step).
    pub(crate) inflight: Cell<usize>,
    /// When set, a commit that would push `inflight` past this bound is
    /// rejected with [`StoreError::Overloaded`] — simple back-pressure.
    pub(crate) capacity: Cell<Option<usize>>,
    /// Per-(origin, dest) send queues; see [`crate::batch`].
    pub(crate) pairs: RefCell<BTreeMap<(Region, Region), PairQueue>>,
    /// Batched fan-out (default) vs the one-event-per-entry ablation.
    pub(crate) batching: Cell<bool>,
    /// Reusable delivery scratch for [`crate::batch`] flushes (taken/replaced
    /// around each flush, so steady-state flushes allocate nothing).
    pub(crate) deliver_scratch: RefCell<Vec<ApplyItem>>,
    /// Reusable (newly_inserted, watermark) scratch for apply batches.
    pub(crate) apply_outcomes: RefCell<Vec<(bool, u64)>>,
}

/// The shared replication engine; see the module docs. Parameterized by the
/// store family's [`Substrate`].
pub struct Engine<S: Substrate> {
    pub(crate) inner: Rc<EngineInner<S>>,
}

impl<S: Substrate> Clone for Engine<S> {
    fn clone(&self) -> Self {
        Engine {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<S: Substrate> Engine<S> {
    /// Creates an engine named `name` with one replica per region (the first
    /// region acts as the primary) and spawns its recovery monitor.
    pub fn new(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        substrate: S,
    ) -> Self {
        let name = name.into();
        assert!(!regions.is_empty(), "a store needs at least one region");
        let rng = RefCell::new(sim.rng(&stream_name(&substrate, &name)));
        let replicas = regions
            .iter()
            .map(|r| (*r, ReplicaState::default()))
            .collect::<BTreeMap<_, _>>();
        let engine = Engine {
            inner: Rc::new(EngineInner {
                name,
                sim: sim.clone(),
                net,
                regions: regions.to_vec(),
                substrate,
                replicas: RefCell::new(replicas),
                next_version: Cell::new(1),
                rng,
                faults: sim.faults(),
                recovery: Cell::new(RecoveryConfig::default()),
                hints: RefCell::new(Vec::new()),
                probe: RefCell::new(None),
                inflight: Cell::new(0),
                capacity: Cell::new(None),
                pairs: RefCell::new(BTreeMap::new()),
                batching: Cell::new(true),
                deliver_scratch: RefCell::new(Vec::new()),
                apply_outcomes: RefCell::new(Vec::new()),
            }),
        };
        crate::recovery::spawn_monitor(&engine);
        engine
    }

    pub(crate) fn name(&self) -> &str {
        &self.inner.name
    }

    pub(crate) fn regions(&self) -> &[Region] {
        &self.inner.regions
    }

    pub(crate) fn primary(&self) -> Region {
        self.inner.regions[0]
    }

    pub(crate) fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    pub(crate) fn net(&self) -> &Rc<Network> {
        &self.inner.net
    }

    pub(crate) fn faults(&self) -> &antipode_sim::fault::FaultPlan {
        &self.inner.faults
    }

    pub(crate) fn substrate(&self) -> &S {
        &self.inner.substrate
    }

    pub(crate) fn rng(&self) -> &RefCell<SimRng> {
        &self.inner.rng
    }

    pub(crate) fn set_recovery(&self, cfg: RecoveryConfig) {
        self.inner.recovery.set(cfg);
    }

    pub(crate) fn recovery_config(&self) -> RecoveryConfig {
        self.inner.recovery.get()
    }

    pub(crate) fn set_probe(&self, probe: Option<VisibilityProbe>) {
        *self.inner.probe.borrow_mut() = probe;
    }

    pub(crate) fn emit(&self, event: VisibilityEvent) {
        if let Some(p) = self.inner.probe.borrow().clone() {
            p(&event);
        }
    }

    /// Reports a `(store, region, key)` touch to the schedule-exploration
    /// footprint recorder (see `antipode_sim::schedule`). Steps of two tasks
    /// touching the same replica key are *dependent* — reordering them can
    /// change visibility outcomes — so the model checker must explore both
    /// orders; disjoint keys commute and get pruned. The `is_recording`
    /// guard keeps the uncontrolled hot path at a single thread-local read.
    #[inline]
    fn note_key_access(&self, region: Region, key: &str) {
        if antipode_sim::schedule::is_recording() {
            antipode_sim::schedule::note_access(antipode_sim::schedule::resource_id(&[
                &self.inner.name,
                region.name(),
                key,
            ]));
        }
    }

    pub(crate) fn set_send_capacity(&self, cap: Option<usize>) {
        self.inner.capacity.set(cap);
    }

    /// Toggles batched fan-out. `false` is the determinism ablation: the
    /// same pair-queue machinery, but every entry costs one executor event —
    /// identical traces, unbatched event counts (see [`crate::batch`]).
    pub(crate) fn set_batching(&self, on: bool) {
        self.inner.batching.set(on);
    }

    /// Whether batched fan-out is enabled.
    pub(crate) fn batching(&self) -> bool {
        self.inner.batching.get()
    }

    pub(crate) fn check_region(&self, region: Region) -> Result<(), StoreError> {
        if self.inner.replicas.borrow().contains_key(&region) {
            Ok(())
        } else {
            Err(StoreError::NoSuchRegion(region))
        }
    }

    /// Like [`Engine::check_region`], but also rejects regions the substrate
    /// considers gated by the fault plan at `now`.
    pub(crate) fn check_available(&self, region: Region) -> Result<(), StoreError> {
        self.check_region(region)?;
        let now = self.inner.sim.now();
        if self
            .inner
            .substrate
            .op_blocked(&self.inner.faults, now, &self.inner.name, region)
        {
            return Err(StoreError::Unavailable {
                store: self.inner.name.clone(),
                region,
            });
        }
        // A quarantined replica refuses service: its log hid corruption the
        // replica cannot bound, so nothing it serves can be trusted until
        // anti-entropy back-fills it from healthy peers.
        if self.replica_health(region) == ReplicaHealth::Tainted {
            stats::count_integrity_refusal();
            return Err(StoreError::IntegrityFault {
                store: self.inner.name.clone(),
                region,
            });
        }
        Ok(())
    }

    /// Commits a write at `origin` and fans out one send per replica.
    ///
    /// `key: None` derives the key from the assigned version (queue family).
    /// Admission follows the substrate: `Reject` fails fast on a gated
    /// region; `Block` parks until the fault plan clears. A crash of the
    /// origin replica *during* the commit latency surfaces as
    /// [`StoreError::CrashedEpoch`]; a full send queue as
    /// [`StoreError::Overloaded`].
    pub(crate) async fn commit(
        &self,
        origin: Region,
        key: Option<&str>,
        value: Bytes,
    ) -> Result<u64, StoreError> {
        match self.inner.substrate.admission() {
            // `check_available` re-checks region existence itself.
            Admission::Reject => self.check_available(origin)?,
            Admission::Block => {
                self.check_region(origin)?;
                let eng = self.clone();
                self.inner
                    .faults
                    .until_clear(&self.inner.sim, move |at| {
                        eng.inner.substrate.op_blocked(
                            &eng.inner.faults,
                            at,
                            &eng.inner.name,
                            origin,
                        )
                    })
                    .await;
            }
        }
        if let Some(cap) = self.inner.capacity.get() {
            if self.inner.inflight.get() >= cap {
                return Err(StoreError::Overloaded {
                    store: self.inner.name.clone(),
                });
            }
        }
        let epoch0 = self.replica_epoch(origin);
        let commit = {
            let mut rng = self.inner.rng.borrow_mut();
            self.inner.substrate.commit_latency(&mut rng)
        };
        self.inner.sim.sleep(commit).await;
        let epoch = self.replica_epoch(origin);
        if epoch != epoch0 {
            // The origin replica crash-restarted mid-commit: the committing
            // process died before assigning a version.
            return Err(StoreError::CrashedEpoch {
                store: self.inner.name.clone(),
                region: origin,
            });
        }
        let version = self.inner.next_version.get();
        self.inner.next_version.set(version + 1);
        let committed_at = self.inner.sim.now();
        stats::count_commit();
        // One shared key allocation for the whole fan-out (and `Bytes`
        // clones are refcount bumps), so a commit's per-destination cost is
        // independent of key and value size. Re-writes of a key the origin
        // already holds reuse its interned `Rc<str>` instead of allocating.
        let key: Rc<str> = match key {
            Some(k) => {
                let replicas = self.inner.replicas.borrow();
                match replicas
                    .get(&origin)
                    .and_then(|state| state.data.get_key_value(k))
                {
                    Some((interned, _)) => Rc::clone(interned),
                    None => Rc::from(k),
                }
            }
            None => Rc::from(self.inner.substrate.derived_key(version).as_str()),
        };
        self.note_key_access(origin, &key);
        if self.inner.substrate.origin_applies_at_commit() {
            self.apply(origin, &key, version, value.clone(), committed_at);
        } else if self.inner.recovery.get().wal {
            // Deferred-apply families (queues) become *visible* only when the
            // local delivery lands, but the commit is the durability point:
            // log it at the origin now so a crash that aborts the in-flight
            // deliveries still leaves the publish recoverable — WAL replay
            // restores the origin copy and anti-entropy back-fills the rest.
            // A LostAppend disk-fault window silently swallows the append:
            // the memtable and the ack proceed, but durability is gone —
            // exactly the failure the scrub sweep exists to catch.
            if !self
                .inner
                .faults
                .append_lost(committed_at, &self.inner.name, origin)
            {
                let mut replicas = self.inner.replicas.borrow_mut();
                if let Some(state) = replicas.get_mut(&origin) {
                    state.wal_append(WalEntry {
                        key: Rc::clone(&key),
                        version,
                        bytes: value.clone(),
                        visible_at: committed_at,
                        committed_at,
                    });
                }
            }
        }
        self.enqueue_sends(origin, epoch, &key, version, &value, committed_at);
        Ok(version)
    }

    /// Applies one record at a replica — the single-delivery path used by
    /// hint flushes, anti-entropy back-fills, and test plumbing. Hot-path
    /// deliveries go through [`Engine::apply_batch`] directly.
    pub(crate) fn apply(
        &self,
        region: Region,
        key: &Rc<str>,
        version: u64,
        value: Bytes,
        committed_at: SimTime,
    ) {
        let mut items = self.inner.deliver_scratch.take();
        items.clear();
        items.push(ApplyItem {
            key: Rc::clone(key),
            version,
            bytes: value,
            committed_at,
            origin_epoch: 0,
        });
        self.apply_batch(region, &mut items);
        self.inner.deliver_scratch.replace(items);
    }

    /// Applies a batch of records at one replica: one crash check, one
    /// replica-map borrow, and one WAL index pass for the whole batch, then
    /// the substrate's per-record reactions. Semantically identical to
    /// applying the items one at a time in order — out-of-order (superseded)
    /// arrivals still satisfy waiters but do not clobber newer data, and
    /// records addressed to a crashed replica are dropped (the process is
    /// dead; anti-entropy repair back-fills them after restart). Drains
    /// `items`.
    pub(crate) fn apply_batch(&self, region: Region, items: &mut Vec<ApplyItem>) {
        if items.is_empty() {
            return;
        }
        let now = self.inner.sim.now();
        if self
            .inner
            .faults
            .replica_crashed(now, &self.inner.name, region)
        {
            items.clear();
            return;
        }
        stats::count_batch_flush(items.len() as u64);
        // One fault-plan probe per batch: inside a LostAppend window every
        // append this batch would make silently vanishes (memtable and acks
        // are unaffected — that is the point of the fault).
        let wal_enabled = self.inner.recovery.get().wal
            && !self.inner.faults.append_lost(now, &self.inner.name, region);
        // Families that never pre-log at commit can skip the WAL dedupe
        // index (see `wal_append_fresh`).
        let fresh_log = self.inner.substrate.origin_applies_at_commit();
        let mut outcomes = self.inner.apply_outcomes.take();
        outcomes.clear();
        {
            let mut replicas = self.inner.replicas.borrow_mut();
            // Sends only target configured replicas; treat a miss as a
            // dropped message rather than tearing the run down.
            let Some(state) = replicas.get_mut(&region) else {
                items.clear();
                self.inner.apply_outcomes.replace(outcomes);
                return;
            };
            for item in items.iter() {
                self.note_key_access(region, &item.key);
                // One tree walk per record: the entry resolves superseded-vs-
                // fresh, performs the insert, and yields the watermark.
                let (newly_inserted, watermark) = match state.data.entry(Rc::clone(&item.key)) {
                    std::collections::btree_map::Entry::Occupied(mut existing) => {
                        if existing.get().version >= item.version {
                            (false, existing.get().version)
                        } else {
                            existing.insert(Record {
                                version: item.version,
                                bytes: item.bytes.clone(),
                                visible_at: now,
                                committed_at: item.committed_at,
                            });
                            (true, item.version)
                        }
                    }
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(Record {
                            version: item.version,
                            bytes: item.bytes.clone(),
                            visible_at: now,
                            committed_at: item.committed_at,
                        });
                        (true, item.version)
                    }
                };
                if newly_inserted && wal_enabled {
                    let entry = WalEntry {
                        key: Rc::clone(&item.key),
                        version: item.version,
                        bytes: item.bytes.clone(),
                        visible_at: now,
                        committed_at: item.committed_at,
                    };
                    if fresh_log {
                        state.wal_append_fresh(entry);
                    } else {
                        state.wal_append(entry);
                    }
                }
                let mut i = 0;
                while i < state.waiters.len() {
                    if state.waiters[i].key == item.key && state.waiters[i].version <= watermark {
                        // lint: allow(scheduler-bypass, visibility waiters are store
                        // bookkeeping — the woken barrier future still runs only when
                        // the executor's Schedule picks it)
                        let w = state.waiters.swap_remove(i);
                        let _ = w.tx.send(Ok(()));
                    } else {
                        i += 1;
                    }
                }
                outcomes.push((newly_inserted, watermark));
            }
        }
        let probe = self.inner.probe.borrow().clone();
        stats::count_applies(items.len() as u64);
        for (item, &(newly_inserted, watermark)) in items.iter().zip(outcomes.iter()) {
            self.inner.substrate.on_apply(&ApplyCtx {
                store: &self.inner.name,
                region,
                key: &item.key,
                version: item.version,
                bytes: &item.bytes,
                committed_at: item.committed_at,
                newly_inserted,
                watermark,
                at: now,
                probe: probe.as_ref(),
            });
        }
        items.clear();
        self.inner.apply_outcomes.replace(outcomes);
    }

    /// Zero-latency read of one replica record.
    pub(crate) fn record(&self, region: Region, key: &str) -> Option<Record> {
        self.note_key_access(region, key);
        self.inner
            .replicas
            .borrow()
            .get(&region)?
            .data
            .get(key)
            .cloned()
    }

    /// Whether `key` has reached at least `version` at `region`.
    pub(crate) fn is_visible(&self, region: Region, key: &str, version: u64) -> bool {
        self.record(region, key)
            .map(|v| v.version >= version)
            .unwrap_or(false)
    }

    /// Resolves once `key` reaches at least `version` at `region`,
    /// subscribing a waiter rather than polling.
    ///
    /// Under `Reject` admission a dark replica surfaces
    /// [`StoreError::Unavailable`] (re-checked every lap so a fresh
    /// subscription against a dark replica never parks forever). Under
    /// `Block` admission waits never error on faults: a waiter cancelled by
    /// a dark-replica edge silently resubscribes and resolves when the
    /// record eventually lands — queue consumers ride out broker windows.
    pub(crate) async fn wait_visible(
        &self,
        region: Region,
        key: &str,
        version: u64,
    ) -> Result<(), StoreError> {
        loop {
            if self.inner.substrate.admission() == Admission::Reject {
                self.check_available(region)?;
            }
            let rx = {
                self.note_key_access(region, key);
                let mut replicas = self.inner.replicas.borrow_mut();
                let state = replicas
                    .get_mut(&region)
                    .ok_or(StoreError::NoSuchRegion(region))?;
                let visible = state
                    .data
                    .get(key)
                    .map(|v| v.version >= version)
                    .unwrap_or(false);
                if visible {
                    return Ok(());
                }
                let (tx, rx) = oneshot();
                state.waiters.push(Waiter {
                    key: Rc::from(key),
                    version,
                    tx,
                });
                rx
            };
            match rx.await {
                Ok(Ok(())) => return Ok(()),
                Ok(Err(e)) => match self.inner.substrate.admission() {
                    // The replica went dark while we were subscribed: surface
                    // the outage so barrier retry policies can re-arm.
                    Admission::Reject => return Err(e),
                    // Blocking families ride out the window: resubscribe.
                    Admission::Block => continue,
                },
                // A dropped sender (cannot happen today, but harmless)
                // retries.
                Err(_) => continue,
            }
        }
    }

    /// The crash epoch of a replica (bumped on every
    /// [`antipode_sim::fault::FaultKind::ReplicaCrash`] entry).
    pub(crate) fn replica_epoch(&self, region: Region) -> u64 {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.epoch)
            .unwrap_or(0)
    }

    /// Number of write-ahead-log entries at a replica (diagnostics).
    pub(crate) fn wal_len(&self, region: Region) -> usize {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.wal.len())
            .unwrap_or(0)
    }

    /// Total framed bytes in a replica's write-ahead log (diagnostics).
    pub(crate) fn wal_byte_len(&self, region: Region) -> usize {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.wal.byte_len())
            .unwrap_or(0)
    }

    /// Integrity standing of a replica (see [`ReplicaHealth`]). Unknown
    /// regions report `Healthy`, matching the epoch accessor's tolerance.
    pub(crate) fn replica_health(&self, region: Region) -> ReplicaHealth {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.health)
            .unwrap_or_default()
    }

    /// Number of pending visibility waiters at a replica (diagnostics).
    pub(crate) fn waiter_count(&self, region: Region) -> usize {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.waiters.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::KvProfile;
    use crate::substrate::KvSubstrate;
    use antipode_sim::dist::Dist;
    use antipode_sim::fault::FaultKind;
    use antipode_sim::net::regions::{EU, US};

    fn setup() -> (Sim, Engine<KvSubstrate>) {
        let sim = Sim::new(9);
        let net = Rc::new(Network::global_triangle());
        let profile = KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        };
        let eng = Engine::new(&sim, net, "db", &[EU, US], KvSubstrate::new(profile));
        (sim, eng)
    }

    #[test]
    fn overloaded_when_capacity_exhausted() {
        let (sim, eng) = setup();
        eng.set_send_capacity(Some(0));
        let e = eng.clone();
        sim.block_on(async move {
            let err = e.commit(EU, Some("k"), Bytes::new()).await.unwrap_err();
            assert_eq!(err, StoreError::Overloaded { store: "db".into() });
            e.set_send_capacity(None);
            e.commit(EU, Some("k"), Bytes::new()).await.unwrap();
        });
    }

    #[test]
    fn crash_mid_commit_surfaces_crashed_epoch() {
        let (sim, eng) = setup();
        // The commit sleeps 1ms; crash the origin inside that window. The
        // pre-commit availability check at t=0 passes (window starts later).
        sim.faults().schedule(
            SimTime::from_nanos(500_000),
            SimTime::from_secs(2),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: EU,
            },
        );
        let e = eng.clone();
        sim.block_on(async move {
            let err = e.commit(EU, Some("k"), Bytes::new()).await.unwrap_err();
            assert!(
                matches!(err, StoreError::CrashedEpoch { region, .. } if region == EU),
                "got {err:?}"
            );
        });
    }

    #[test]
    fn inflight_counter_returns_to_zero() {
        let (sim, eng) = setup();
        let e = eng.clone();
        sim.spawn(async move {
            e.commit(EU, Some("k"), Bytes::new()).await.unwrap();
        });
        sim.run();
        assert_eq!(eng.inner.inflight.get(), 0);
        assert!(eng.is_visible(US, "k", 1));
    }
}

//! # antipode-store
//!
//! Eight simulated geo-replicated datastores with Antipode shim layers,
//! mirroring the stores of the paper's evaluation (§6.4): MySQL, DynamoDB,
//! Redis, S3, MongoDB (key-value/object/document family) and SNS, AMQ,
//! RabbitMQ plus DynamoDB-streams (notifier family).
//!
//! One replication engine carries the shared mechanics for *both* families:
//! - [`engine::Engine`] — per-region replica state with crash epochs,
//!   replication send/deliver with fault-plan consultation, visibility
//!   watermarks and waiters, WAL append/replay, hinted handoff, and
//!   anti-entropy repair;
//! - [`substrate::Substrate`] — the small trait that injects everything the
//!   families legitimately disagree on (admission policy, retry style,
//!   latency profile, apply reactions), implemented by
//!   [`substrate::KvSubstrate`] and [`substrate::QueueSubstrate`].
//!
//! [`replica::KvStore`] (versioned key-object replicas with strong reads)
//! and [`queue::QueueStore`] (publish/subscribe with acks, consumer groups,
//! and redelivery) are thin facades over the engine — which means queue
//! brokers get the whole recovery plane (WAL crash-restart, hinted handoff,
//! anti-entropy) for free.
//!
//! Each store module layers a typed facade (the "client crate") plus an
//! Antipode shim over one of the two families, stamped out by the shared
//! facade generators. The shims are deliberately thin — the paper reports
//! < 50 LoC per store — and differ only in naming, the calibrated
//! [`profiles`], and the Table 3 storage-amplification model.
//!
//! ```
//! use antipode_lineage::{Lineage, LineageId};
//! use antipode_sim::net::regions::{EU, US};
//! use antipode_sim::{Network, Sim};
//! use antipode_store::{MySql, MySqlShim};
//! use antipode::WaitTarget;
//! use bytes::Bytes;
//! use std::rc::Rc;
//!
//! let sim = Sim::new(7);
//! let net = Rc::new(Network::global_triangle());
//! let db = MySql::new(&sim, net, "posts", &[EU, US]);
//! let shim = MySqlShim::new(&db);
//! sim.clone().block_on(async move {
//!     let mut lineage = Lineage::new(LineageId(1));
//!     let wid = shim
//!         .insert(EU, "posts", "1", Bytes::from_static(b"hello"), &mut lineage)
//!         .await
//!         .unwrap();
//!     // Immediately after the EU commit the US replica may miss it…
//!     assert!(!shim.is_visible(&wid, US));
//!     // …the store-specific wait resolves once replication lands.
//!     shim.wait(&wid, US).await.unwrap();
//!     assert!(shim.is_visible(&wid, US));
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amq;
pub mod batch;
pub mod dynamodb;
pub mod engine;
pub mod envelope;
mod facade;
pub mod mongodb;
pub mod mysql;
pub mod probe;
pub mod profiles;
pub mod queue;
pub mod rabbitmq;
pub mod recovery;
pub mod redis;
pub mod repair;
pub mod replica;
pub mod s3;
pub mod shim;
pub mod slab;
pub mod sns;
pub mod speculation;
pub mod stats;
pub mod substrate;
pub mod wal;

pub use amq::{Amq, AmqShim};
pub use dynamodb::{DynamoDb, DynamoDbShim, DynamoDbStream, DynamoDbStreamShim};
pub use engine::{Engine, Record, ReplicaHealth};
pub use envelope::Envelope;
pub use mongodb::{MongoDb, MongoDbShim};
pub use mysql::{MySql, MySqlShim};
pub use queue::{GroupConsumer, QueueMessage, QueueProfile, QueueStore};
pub use rabbitmq::{RabbitMq, RabbitMqShim};
pub use recovery::{Hint, RecoveryConfig, WalEntry};
pub use redis::{Redis, RedisShim};
pub use repair::{RepairConfig, RepairReport, ScrubReport};
pub use replica::{KvProfile, KvStore, StoreError, StoredValue};
pub use s3::{S3Shim, S3};
pub use shim::{KvShim, QueueShim, ShimError, ShimMessage, ShimSubscription, WaitSemantics};
pub use slab::SlabStats;
pub use sns::{Sns, SnsShim};
pub use speculation::{BufferState, ConfinedOp, ConfinementBuffer};
pub use stats::EngineStats;
pub use substrate::{Admission, ApplyCtx, KvSubstrate, QueueSubstrate, RetryStyle, Substrate};
pub use wal::{WalFault, WalFaultKind, WalLog, WalScan};

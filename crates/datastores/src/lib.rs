//! # antipode-store
//!
//! Eight simulated geo-replicated datastores with Antipode shim layers,
//! mirroring the stores of the paper's evaluation (§6.4): MySQL, DynamoDB,
//! Redis, S3, MongoDB (key-value/object/document family) and SNS, AMQ,
//! RabbitMQ plus DynamoDB-streams (notifier family).
//!
//! Two frameworks carry the shared mechanics:
//! - [`replica::KvStore`] — versioned key-object replicas per region with
//!   asynchronous replication, visibility waiters, strong reads, and failure
//!   injection;
//! - [`queue::QueueStore`] — publish/subscribe with per-region delivery.
//!
//! Each store module layers a typed facade (the "client crate") plus an
//! Antipode shim over one of the frameworks. The shims are deliberately thin
//! — the paper reports < 50 LoC per store — and differ only in naming, the
//! calibrated [`profiles`], and the Table 3 storage-amplification model.
//!
//! ```
//! use antipode_lineage::{Lineage, LineageId};
//! use antipode_sim::net::regions::{EU, US};
//! use antipode_sim::{Network, Sim};
//! use antipode_store::{MySql, MySqlShim};
//! use antipode::WaitTarget;
//! use bytes::Bytes;
//! use std::rc::Rc;
//!
//! let sim = Sim::new(7);
//! let net = Rc::new(Network::global_triangle());
//! let db = MySql::new(&sim, net, "posts", &[EU, US]);
//! let shim = MySqlShim::new(&db);
//! sim.clone().block_on(async move {
//!     let mut lineage = Lineage::new(LineageId(1));
//!     let wid = shim
//!         .insert(EU, "posts", "1", Bytes::from_static(b"hello"), &mut lineage)
//!         .await
//!         .unwrap();
//!     // Immediately after the EU commit the US replica may miss it…
//!     assert!(!shim.is_visible(&wid, US));
//!     // …the store-specific wait resolves once replication lands.
//!     shim.wait(&wid, US).await.unwrap();
//!     assert!(shim.is_visible(&wid, US));
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amq;
pub mod dynamodb;
pub mod envelope;
pub mod mongodb;
pub mod mysql;
pub mod probe;
pub mod profiles;
pub mod queue;
pub mod rabbitmq;
pub mod recovery;
pub mod redis;
pub mod repair;
pub mod replica;
pub mod s3;
pub mod shim;
pub mod sns;

pub use amq::{Amq, AmqShim};
pub use dynamodb::{DynamoDb, DynamoDbShim, DynamoDbStream, DynamoDbStreamShim};
pub use envelope::Envelope;
pub use mongodb::{MongoDb, MongoDbShim};
pub use mysql::{MySql, MySqlShim};
pub use queue::{GroupConsumer, QueueMessage, QueueProfile, QueueStore};
pub use rabbitmq::{RabbitMq, RabbitMqShim};
pub use recovery::{Hint, RecoveryConfig, WalEntry};
pub use redis::{Redis, RedisShim};
pub use repair::{RepairConfig, RepairReport};
pub use replica::{KvProfile, KvStore, StoreError, StoredValue};
pub use s3::{S3Shim, S3};
pub use shim::{KvShim, QueueShim, ShimError, ShimMessage, ShimSubscription, WaitSemantics};
pub use sns::{Sns, SnsShim};

//! Facade generators for the simulated store catalogue.
//!
//! Every store in the catalogue — KV family (MySQL, S3, Redis, MongoDB,
//! DynamoDB) and queue family (SNS, AMQ, RabbitMQ, DynamoDB Streams) — used
//! to hand-roll the same ~70 lines of plumbing: a newtype over
//! [`crate::replica::KvStore`] or [`crate::queue::QueueStore`], the
//! `new`/`with_profile` constructors, the raw-store accessor, the shim
//! newtype over [`crate::shim::KvShim`]/[`crate::shim::QueueShim`], and the
//! [`antipode::wait::WaitTarget`] delegation. These macros stamp out that
//! plumbing; each store module keeps only its domain API (`insert`/`select`,
//! `put_object`/`get_object`, …), its Table 3 overhead constants, and its
//! tests.
//!
//! The macros expand *inside the invoking module*, so the generated private
//! fields (`store`/`queue`, `inner`) remain accessible to the module's
//! hand-written domain methods — no visibility widening needed.

/// Generates a KV-family facade: `$store` wrapping a
/// [`crate::replica::KvStore`] (field `store`, accessor `store()`), plus
/// `$shim` wrapping a [`crate::shim::KvShim`] (field `inner`) with the full
/// [`antipode::wait::WaitTarget`] delegation.
macro_rules! kv_facade {
    (
        $(#[$store_meta:meta])*
        store $store:ident(profile: $profile:path);
        $(#[$shim_meta:meta])*
        shim $shim:ident;
    ) => {
        $(#[$store_meta])*
        #[derive(Clone)]
        pub struct $store {
            store: $crate::replica::KvStore,
        }

        impl $store {
            /// Creates an instance with this store's calibrated profile.
            pub fn new(
                sim: &::antipode_sim::Sim,
                net: ::std::rc::Rc<::antipode_sim::net::Network>,
                name: impl ::std::convert::Into<::std::string::String>,
                regions: &[::antipode_sim::Region],
            ) -> Self {
                Self::with_profile(sim, net, name, regions, $profile())
            }

            /// Creates an instance with a custom profile (used by experiments).
            pub fn with_profile(
                sim: &::antipode_sim::Sim,
                net: ::std::rc::Rc<::antipode_sim::net::Network>,
                name: impl ::std::convert::Into<::std::string::String>,
                regions: &[::antipode_sim::Region],
                profile: $crate::replica::KvProfile,
            ) -> Self {
                $store {
                    store: $crate::replica::KvStore::new(sim, net, name, regions, profile),
                }
            }

            /// The underlying replicated store.
            pub fn store(&self) -> &$crate::replica::KvStore {
                &self.store
            }
        }

        $(#[$shim_meta])*
        #[derive(Clone)]
        pub struct $shim {
            inner: $crate::shim::KvShim,
        }

        impl $shim {
            /// Wraps a store instance.
            pub fn new(db: &$store) -> Self {
                $shim {
                    inner: $crate::shim::KvShim::new(db.store.clone()),
                }
            }
        }

        impl ::antipode::wait::WaitTarget for $shim {
            fn datastore_name(&self) -> &str {
                ::antipode::wait::WaitTarget::datastore_name(&self.inner)
            }
            fn wait<'a>(
                &'a self,
                write: &'a ::antipode_lineage::WriteId,
                region: ::antipode_sim::Region,
            ) -> ::antipode::wait::LocalBoxFuture<'a, Result<(), ::antipode::wait::WaitError>>
            {
                ::antipode::wait::WaitTarget::wait(&self.inner, write, region)
            }
            fn is_visible(
                &self,
                write: &::antipode_lineage::WriteId,
                region: ::antipode_sim::Region,
            ) -> bool {
                ::antipode::wait::WaitTarget::is_visible(&self.inner, write, region)
            }
        }
    };
}

/// Generates a queue-family facade: `$store` wrapping a
/// [`crate::queue::QueueStore`] (field `queue`, accessor `queue()`), plus
/// `$shim` wrapping a [`crate::shim::QueueShim`] (field `inner`) with the
/// full [`antipode::wait::WaitTarget`] delegation.
macro_rules! queue_facade {
    (
        $(#[$store_meta:meta])*
        store $store:ident(profile: $profile:path);
        $(#[$shim_meta:meta])*
        shim $shim:ident;
    ) => {
        $(#[$store_meta])*
        #[derive(Clone)]
        pub struct $store {
            queue: $crate::queue::QueueStore,
        }

        impl $store {
            /// Creates an instance with this broker's calibrated profile.
            pub fn new(
                sim: &::antipode_sim::Sim,
                net: ::std::rc::Rc<::antipode_sim::net::Network>,
                name: impl ::std::convert::Into<::std::string::String>,
                regions: &[::antipode_sim::Region],
            ) -> Self {
                Self::with_profile(sim, net, name, regions, $profile())
            }

            /// Creates an instance with a custom profile.
            pub fn with_profile(
                sim: &::antipode_sim::Sim,
                net: ::std::rc::Rc<::antipode_sim::net::Network>,
                name: impl ::std::convert::Into<::std::string::String>,
                regions: &[::antipode_sim::Region],
                profile: $crate::queue::QueueProfile,
            ) -> Self {
                $store {
                    queue: $crate::queue::QueueStore::new(sim, net, name, regions, profile),
                }
            }

            /// The underlying queue store.
            pub fn queue(&self) -> &$crate::queue::QueueStore {
                &self.queue
            }
        }

        $(#[$shim_meta])*
        #[derive(Clone)]
        pub struct $shim {
            inner: $crate::shim::QueueShim,
        }

        impl $shim {
            /// Wraps a broker instance (pub/sub delivery semantics).
            pub fn new(q: &$store) -> Self {
                $shim {
                    inner: $crate::shim::QueueShim::new(q.queue.clone()),
                }
            }
        }

        impl ::antipode::wait::WaitTarget for $shim {
            fn datastore_name(&self) -> &str {
                ::antipode::wait::WaitTarget::datastore_name(&self.inner)
            }
            fn wait<'a>(
                &'a self,
                write: &'a ::antipode_lineage::WriteId,
                region: ::antipode_sim::Region,
            ) -> ::antipode::wait::LocalBoxFuture<'a, Result<(), ::antipode::wait::WaitError>>
            {
                ::antipode::wait::WaitTarget::wait(&self.inner, write, region)
            }
            fn is_visible(
                &self,
                write: &::antipode_lineage::WriteId,
                region: ::antipode_sim::Region,
            ) -> bool {
                ::antipode::wait::WaitTarget::is_visible(&self.inner, write, region)
            }
        }
    };
}

pub(crate) use kv_facade;
pub(crate) use queue_facade;

//! Visibility probes: observation hooks for dynamic analysis.
//!
//! The happens-before race detector (`antipode::race`) needs to know *when*
//! a write became visible in each region, independently of the checker it
//! cross-validates. Both store frameworks ([`crate::replica::KvStore`] and
//! [`crate::queue::QueueStore`]) accept an optional probe and invoke it at
//! every visibility-changing event: a replication apply, a queue delivery,
//! a consumer acknowledgement. Probes are observation-only — they run
//! synchronously at the event's virtual instant and must not re-enter the
//! store.

use std::rc::Rc;

use antipode_sim::{Region, SimTime};

/// One visibility-changing event observed inside a store framework.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VisibilityEvent {
    /// A KV replica applied (or acknowledged, for superseded versions) a
    /// write: from this instant, `is_visible(region, key, version)` holds
    /// for every `version ≤ watermark`.
    KvApplied {
        /// Store name (as used in write identifiers).
        store: String,
        /// Region whose replica applied the write.
        region: Region,
        /// Key written.
        key: String,
        /// Highest version the replica has now seen for `key` (watermark —
        /// visibility is monotone in the version).
        watermark: u64,
        /// Virtual instant of the apply.
        at: SimTime,
    },
    /// A queue delivered a message in a region: from this instant,
    /// `is_visible(region, id)` holds.
    QueueDelivered {
        /// Queue-store name.
        store: String,
        /// Region the message was delivered in.
        region: Region,
        /// Message id (the version in write identifiers).
        id: u64,
        /// Virtual instant of the delivery.
        at: SimTime,
    },
    /// A consumer acknowledged a message: from this instant,
    /// `is_acked(region, id)` holds (work-queue visibility semantics).
    QueueAcked {
        /// Queue-store name.
        store: String,
        /// Region the ack landed in.
        region: Region,
        /// Message id.
        id: u64,
        /// Virtual instant of the ack.
        at: SimTime,
    },
}

impl VisibilityEvent {
    /// The virtual instant the event occurred at.
    pub fn at(&self) -> SimTime {
        match self {
            VisibilityEvent::KvApplied { at, .. }
            | VisibilityEvent::QueueDelivered { at, .. }
            | VisibilityEvent::QueueAcked { at, .. } => *at,
        }
    }
}

/// An observation hook; see the module docs.
pub type VisibilityProbe = Rc<dyn Fn(&VisibilityEvent)>;

//! Simulated Redis (ElastiCache global-datastore style) and its shim.
//!
//! The fastest replicator of the post-storage stores but with high jitter —
//! Table 1's 88 % against SNS comes from Redis occasionally beating SNS
//! delivery.

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::kv_facade;
use crate::replica::{StoreError, StoredValue};
use crate::shim::ShimError;

/// Extra per-key storage amplification: the lineage is stored as a companion
/// hash field, duplicating key metadata (Table 3: +105 B total).
pub const KEY_METADATA_OVERHEAD_BYTES: usize = 56;

kv_facade! {
    /// A simulated geo-replicated Redis.
    store Redis(profile: crate::profiles::redis);
    /// The Antipode shim for [`Redis`].
    shim RedisShim;
}

impl Redis {
    /// SET (baseline path, no lineage).
    pub async fn set(&self, region: Region, key: &str, value: Bytes) -> Result<u64, StoreError> {
        self.store.put(region, key, value).await
    }

    /// GET from the local replica.
    pub async fn get(&self, region: Region, key: &str) -> Result<Option<StoredValue>, StoreError> {
        self.store.get(region, key).await
    }
}

impl RedisShim {
    /// Lineage-propagating SET.
    pub async fn set(
        &self,
        region: Region,
        key: &str,
        value: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.write(region, key, value, lineage).await
    }

    /// Lineage-recovering GET.
    #[allow(clippy::type_complexity)]
    pub async fn get(
        &self,
        region: Region,
        key: &str,
    ) -> Result<Option<(Bytes, Option<Lineage>)>, ShimError> {
        self.inner.read(region, key).await
    }

    /// Table 3 model: envelope plus duplicated key metadata (+105 B total).
    pub fn storage_overhead(&self, lineage: &Lineage) -> usize {
        self.inner.envelope_overhead(lineage) + KEY_METADATA_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode::wait::WaitTarget;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;

    #[test]
    fn set_get_round_trip() {
        let sim = Sim::new(21);
        let net = Rc::new(Network::global_triangle());
        let r = Redis::new(&sim, net, "cache", &[EU, US]);
        sim.block_on(async move {
            r.set(EU, "k", Bytes::from_static(b"v")).await.unwrap();
            assert_eq!(
                r.get(EU, "k").await.unwrap().unwrap().bytes,
                Bytes::from_static(b"v")
            );
        });
    }

    #[test]
    fn shim_wait_and_overhead() {
        let sim = Sim::new(22);
        let net = Rc::new(Network::global_triangle());
        let r = Redis::new(&sim, net, "cache", &[EU, US]);
        let shim = RedisShim::new(&r);
        sim.block_on(async move {
            let mut lin = Lineage::new(LineageId(1));
            let wid = shim
                .set(EU, "k", Bytes::from_static(b"v"), &mut lin)
                .await
                .unwrap();
            shim.wait(&wid, US).await.unwrap();
            assert!(shim.is_visible(&wid, US));
            // Table 3: ≈ +105 B.
            let oh = shim.storage_overhead(&lin);
            assert!((60..200).contains(&oh), "overhead {oh}");
        });
    }
}

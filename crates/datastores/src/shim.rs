//! Generic shim plumbing shared by the eight datastore shims.
//!
//! The paper's Shim API (Table 2) proxies `write`/`read` so lineages are
//! (de)serialized alongside values, and exposes the store-specific `wait`.
//! [`KvShim`] and [`QueueShim`] implement that once over the two store
//! frameworks; the per-store shims in each store module are thin wrappers
//! (mirroring the paper's < 50 LoC per store) that add the store's name and
//! its storage-amplification model for Table 3.

use antipode::wait::{LocalBoxFuture, WaitError, WaitTarget};
use antipode_lineage::varint::CodecError;
use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::envelope::Envelope;
use crate::queue::{QueueMessage, QueueStore};
use crate::replica::{KvStore, StoreError};

/// Errors from shim reads.
#[derive(Clone, Debug, PartialEq)]
pub enum ShimError {
    /// Underlying store error.
    Store(StoreError),
    /// The stored bytes were not a valid envelope (e.g. written by a
    /// non-Antipode writer without the shim).
    Envelope(CodecError),
}

impl std::fmt::Display for ShimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShimError::Store(e) => write!(f, "store error: {e}"),
            ShimError::Envelope(e) => write!(f, "stored value is not an envelope: {e}"),
        }
    }
}
impl std::error::Error for ShimError {}

impl From<StoreError> for ShimError {
    fn from(e: StoreError) -> Self {
        ShimError::Store(e)
    }
}

fn map_wait_err(e: StoreError) -> WaitError {
    match e {
        StoreError::NoSuchRegion(r) => WaitError::NoReplicaInRegion(r),
        StoreError::Unavailable { store, region } => {
            WaitError::StoreUnavailable(format!("{store}@{region}"))
        }
        StoreError::CrashedEpoch { store, region } => {
            WaitError::StoreUnavailable(format!("{store}@{region} (crash epoch)"))
        }
        StoreError::Overloaded { store } => {
            WaitError::StoreUnavailable(format!("{store} (overloaded)"))
        }
        // A quarantined replica is degraded the same way an outage is:
        // barriers back off and retry until anti-entropy rejoins it.
        StoreError::IntegrityFault { store, region } => {
            WaitError::StoreUnavailable(format!("{store}@{region} (integrity fault)"))
        }
    }
}

/// The generic key-value shim: lineage-propagating `write`/`read`/`wait`
/// over a [`KvStore`].
#[derive(Clone)]
pub struct KvShim {
    store: KvStore,
}

impl KvShim {
    /// Wraps a store.
    pub fn new(store: KvStore) -> Self {
        KvShim { store }
    }

    /// The wrapped store.
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Shim `write(k, ⟨v, ℒ⟩)`: stores the value together with the lineage
    /// and appends the new write identifier to the lineage (paper §6.1: the
    /// returned lineage extends the input with the new identifier).
    pub async fn write(
        &self,
        region: Region,
        key: &str,
        value: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        let env = Envelope::with_lineage(value, lineage.clone());
        let version = self.store.put(region, key, env.encode()).await?;
        let id = WriteId::new(self.store.name(), key, version);
        lineage.append(id.clone());
        Ok(id)
    }

    /// Shim `read(k)`: returns the value and the lineage stored with it
    /// (callers typically `transfer` the lineage into their own).
    #[allow(clippy::type_complexity)]
    pub async fn read(
        &self,
        region: Region,
        key: &str,
    ) -> Result<Option<(Bytes, Option<Lineage>)>, ShimError> {
        let Some(stored) = self.store.get(region, key).await? else {
            return Ok(None);
        };
        let env = Envelope::decode(&stored.bytes).map_err(ShimError::Envelope)?;
        Ok(Some((env.data, env.lineage)))
    }

    /// The per-object byte overhead of storing `lineage` with a value — the
    /// envelope framing plus the serialized lineage.
    pub fn envelope_overhead(&self, lineage: &Lineage) -> usize {
        Envelope::with_lineage(Bytes::new(), lineage.clone()).overhead()
    }
}

impl WaitTarget for KvShim {
    fn datastore_name(&self) -> &str {
        self.store.name()
    }

    fn wait<'a>(
        &'a self,
        write: &'a WriteId,
        region: Region,
    ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
        Box::pin(async move {
            self.store
                .wait_visible(region, write.key(), write.version())
                .await
                .map_err(map_wait_err)
        })
    }

    fn is_visible(&self, write: &WriteId, region: Region) -> bool {
        self.store.is_visible(region, write.key(), write.version())
    }
}

/// A message as decoded by the queue shim.
#[derive(Clone, Debug, PartialEq)]
pub struct ShimMessage {
    /// The raw queue message (id, timing).
    pub raw: QueueMessage,
    /// The application payload.
    pub payload: Bytes,
    /// The lineage the publisher attached, if any.
    pub lineage: Option<Lineage>,
}

/// What "visible" means for a queued message — `wait` is store-specific and
/// opaque (§6.3): a pub/sub notifier considers a message visible once
/// *delivered*; a work queue considers it visible once *processed* (acked by
/// its consumer, with any resulting writes committed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WaitSemantics {
    /// Visible once delivered in the region.
    #[default]
    Delivered,
    /// Visible once a consumer in the region acknowledged it.
    Processed,
}

/// The generic queue shim: lineage-propagating `publish`/`subscribe`/`wait`
/// over a [`QueueStore`].
#[derive(Clone)]
pub struct QueueShim {
    store: QueueStore,
    semantics: WaitSemantics,
}

impl QueueShim {
    /// Wraps a queue store with [`WaitSemantics::Delivered`].
    pub fn new(store: QueueStore) -> Self {
        QueueShim {
            store,
            semantics: WaitSemantics::default(),
        }
    }

    /// Sets the wait semantics.
    pub fn with_semantics(mut self, semantics: WaitSemantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Acknowledges a processed message (consumers using
    /// [`WaitSemantics::Processed`] call this after committing their work).
    pub fn ack(&self, region: Region, msg: &ShimMessage) -> Result<(), ShimError> {
        self.store.ack(region, msg.raw.id).map_err(ShimError::Store)
    }

    /// The wrapped store.
    pub fn store(&self) -> &QueueStore {
        &self.store
    }

    /// Publishes `payload` with the lineage attached; appends the publish's
    /// write identifier to the lineage and returns it.
    pub async fn publish(
        &self,
        region: Region,
        payload: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        let env = Envelope::with_lineage(payload, lineage.clone());
        let id = self.store.publish(region, env.encode()).await?;
        let wid = WriteId::new(self.store.name(), format!("msg-{id}"), id);
        lineage.append(wid.clone());
        Ok(wid)
    }

    /// Subscribes in `region`; see [`ShimSubscription::recv`].
    pub fn subscribe(&self, region: Region) -> Result<ShimSubscription, ShimError> {
        Ok(ShimSubscription {
            rx: self.store.subscribe(region)?,
        })
    }
}

/// A lineage-decoding subscription from [`QueueShim::subscribe`].
pub struct ShimSubscription {
    rx: antipode_sim::sync::Receiver<QueueMessage>,
}

impl ShimSubscription {
    /// Receives and decodes the next message; `None` when the queue closes.
    pub async fn recv(&mut self) -> Result<Option<ShimMessage>, ShimError> {
        let Some(raw) = self.rx.recv().await else {
            return Ok(None);
        };
        let env = Envelope::decode(&raw.payload).map_err(ShimError::Envelope)?;
        Ok(Some(ShimMessage {
            raw: raw.clone(),
            payload: env.data,
            lineage: env.lineage,
        }))
    }

    /// Non-blocking receive: decodes an already-delivered message, if any.
    pub fn try_recv(&mut self) -> Result<Option<ShimMessage>, ShimError> {
        let Some(raw) = self.rx.try_recv() else {
            return Ok(None);
        };
        let env = Envelope::decode(&raw.payload).map_err(ShimError::Envelope)?;
        Ok(Some(ShimMessage {
            raw: raw.clone(),
            payload: env.data,
            lineage: env.lineage,
        }))
    }
}

impl WaitTarget for QueueShim {
    fn datastore_name(&self) -> &str {
        self.store.name()
    }

    fn wait<'a>(
        &'a self,
        write: &'a WriteId,
        region: Region,
    ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
        Box::pin(async move {
            match self.semantics {
                WaitSemantics::Delivered => self
                    .store
                    .wait_visible(region, write.version())
                    .await
                    .map_err(map_wait_err),
                WaitSemantics::Processed => self
                    .store
                    .wait_acked(region, write.version())
                    .await
                    .map_err(map_wait_err),
            }
        })
    }

    fn is_visible(&self, write: &WriteId, region: Region) -> bool {
        match self.semantics {
            WaitSemantics::Delivered => self.store.is_visible(region, write.version()),
            WaitSemantics::Processed => self.store.is_acked(region, write.version()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::KvProfile;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::{Network, Sim};
    use std::rc::Rc;
    use std::time::Duration;

    fn kv_setup() -> (Sim, KvShim) {
        let sim = Sim::new(5);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "posts", &[EU, US], KvProfile::default());
        (sim, KvShim::new(store))
    }

    #[test]
    fn write_appends_identifier_and_read_recovers_lineage() {
        let (sim, shim) = kv_setup();
        sim.block_on(async move {
            let mut lin = Lineage::new(LineageId(1));
            let wid = shim
                .write(EU, "post-1", Bytes::from_static(b"hello"), &mut lin)
                .await
                .unwrap();
            assert_eq!(&*wid.datastore(), "posts");
            assert!(lin.contains(&wid), "write must extend the lineage");
            let (data, stored_lin) = shim.read(EU, "post-1").await.unwrap().unwrap();
            assert_eq!(data, Bytes::from_static(b"hello"));
            // The stored lineage is the one *before* this write was appended.
            assert_eq!(stored_lin.unwrap().id(), LineageId(1));
        });
    }

    #[test]
    fn read_missing_key_is_none() {
        let (sim, shim) = kv_setup();
        sim.block_on(async move {
            assert!(shim.read(EU, "nope").await.unwrap().is_none());
        });
    }

    #[test]
    fn read_of_raw_value_reports_envelope_error() {
        let (sim, shim) = kv_setup();
        sim.block_on(async move {
            // A non-Antipode writer bypasses the shim.
            shim.store()
                .put(EU, "raw", Bytes::from_static(&[0xff, 0xff, 0x01]))
                .await
                .unwrap();
            match shim.read(EU, "raw").await {
                Err(ShimError::Envelope(_)) => {}
                other => panic!("expected envelope error, got {other:?}"),
            }
        });
    }

    #[test]
    fn kv_shim_wait_target() {
        let (sim, shim) = kv_setup();
        let shim2 = shim.clone();
        sim.block_on(async move {
            let mut lin = Lineage::new(LineageId(2));
            let wid = shim2.write(EU, "k", Bytes::new(), &mut lin).await.unwrap();
            assert!(!shim2.is_visible(&wid, US));
            shim2.wait(&wid, US).await.unwrap();
            assert!(shim2.is_visible(&wid, US));
        });
    }

    #[test]
    fn queue_shim_round_trip() {
        let sim = Sim::new(6);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(&sim, net, "sns", &[EU, US], Default::default());
        let shim = QueueShim::new(q);
        sim.block_on(async move {
            let mut sub = shim.subscribe(US).unwrap();
            let mut lin = Lineage::new(LineageId(3));
            lin.append(WriteId::new("posts", "post-1", 9));
            let wid = shim
                .publish(EU, Bytes::from_static(b"notif"), &mut lin)
                .await
                .unwrap();
            assert_eq!(&*wid.datastore(), "sns");
            assert!(lin.contains(&wid));
            let msg = sub.recv().await.unwrap().unwrap();
            assert_eq!(msg.payload, Bytes::from_static(b"notif"));
            let carried = msg.lineage.unwrap();
            // The carried lineage has the post dependency but not the publish
            // itself (it was serialized before appending).
            assert!(carried.contains(&WriteId::new("posts", "post-1", 9)));
            assert!(shim.is_visible(&wid, US));
        });
    }

    #[test]
    fn processed_semantics_waits_for_ack() {
        let sim = Sim::new(7);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(&sim, net, "work", &[EU], Default::default());
        let shim = QueueShim::new(q).with_semantics(WaitSemantics::Processed);
        let shim2 = shim.clone();
        sim.block_on(async move {
            let mut sub = shim2.subscribe(EU).unwrap();
            let mut lin = Lineage::new(LineageId(1));
            let wid = shim2
                .publish(EU, Bytes::from_static(b"task"), &mut lin)
                .await
                .unwrap();
            // Delivered but not acked: still invisible under Processed.
            let msg = sub.recv().await.unwrap().unwrap();
            assert!(!shim2.is_visible(&wid, EU));
            shim2.ack(EU, &msg).unwrap();
            assert!(shim2.is_visible(&wid, EU));
            shim2.wait(&wid, EU).await.unwrap();
        });
    }

    #[test]
    fn wait_blocks_until_consumer_acks() {
        let sim = Sim::new(8);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(&sim, net, "work", &[EU], Default::default());
        let shim = QueueShim::new(q).with_semantics(WaitSemantics::Processed);
        // Consumer that takes 50ms to process before acking.
        let consumer_shim = shim.clone();
        let csim = sim.clone();
        sim.spawn(async move {
            let mut sub = consumer_shim.subscribe(EU).unwrap();
            while let Ok(Some(msg)) = sub.recv().await {
                csim.sleep(Duration::from_millis(50)).await;
                consumer_shim.ack(EU, &msg).unwrap();
            }
        });
        let waited = sim.block_on({
            let sim = sim.clone();
            let shim = shim.clone();
            async move {
                let mut lin = Lineage::new(LineageId(2));
                let wid = shim.publish(EU, Bytes::new(), &mut lin).await.unwrap();
                let start = sim.now();
                shim.wait(&wid, EU).await.unwrap();
                sim.now().since(start)
            }
        });
        assert!(waited >= Duration::from_millis(50), "waited {waited:?}");
    }

    #[test]
    fn envelope_overhead_reports_lineage_cost() {
        let (_sim, shim) = kv_setup();
        let mut lin = Lineage::new(LineageId(1));
        let empty = shim.envelope_overhead(&lin);
        lin.append(WriteId::new("a-store", "some-key-1234", 7));
        let one = shim.envelope_overhead(&lin);
        assert!(one > empty);
        assert!(one < 100, "one-dep lineage overhead {one} B");
    }
}

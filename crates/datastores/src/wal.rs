//! The self-validating write-ahead log: byte-framed records sealed by
//! per-record CRC32C checksums.
//!
//! Before the storage-integrity plane, a replica's WAL was a plain
//! `Vec<WalEntry>` — structurally incorruptible, which made the recovery
//! plane blind to the disk faults real logs suffer (torn tail writes, bit
//! rot, silently dropped appends). This module makes the log a byte
//! artifact with the same failure surface as a file on disk, and gives
//! replay the tools to *detect* damage instead of serving it:
//!
//! - Every [`WalEntry`] is framed as `[u32 len][u32 crc32c(body)][body]`
//!   (little-endian, fixed-width body fields). The checksum is the
//!   hand-rolled Castagnoli from [`antipode_lineage::crc32c`] — the same
//!   one sealing v2 lineage wire frames.
//! - [`WalLog::scan`] walks the frames in order and stops at the **first**
//!   bad one, reporting its exact byte offset and how it failed:
//!   [`WalFaultKind::TornFrame`] (the frame runs past the end of the log —
//!   an interrupted tail write) or [`WalFaultKind::ChecksumMismatch`] (the
//!   body does not match its seal — bit rot). Everything before the fault
//!   is verified and replayable; nothing after it can be trusted, because
//!   frame boundaries downstream of a bad length are guesswork.
//! - The corruption injectors ([`WalLog::tear_tail`],
//!   [`WalLog::flip_byte`]) live *here*, next to the codec, so the rest of
//!   the workspace never touches raw frame bytes — the antipode-lint rule
//!   W1 (`unchecked-wal-read`) polices exactly that boundary.
//! - Framing and checksumming run off the commit path: appends stage the
//!   entry and frames are sealed lazily, group-commit style, the first
//!   time the byte artifact is observed (see the [`WalLog`] note on
//!   deferred sealing). Integrity semantics are unchanged — faults only
//!   ever land on sealed frames — and the engine hop stays O(1).
//!
//! A note on bit flips that land in a frame's *length* field: an in-bounds
//! corrupt length makes the checksum window wrong, so the seal catches it
//! (`ChecksumMismatch`); an out-of-bounds one surfaces as `TornFrame`.
//! Either way the scan stops at that record's offset — corruption is
//! contained, never decoded past.
//!
//! The unverified scan mode exists only for the checksum-disabled ablation
//! ([`crate::recovery::RecoveryConfig::verify_checksums`]): it trusts the
//! declared lengths, decodes whatever the bytes say, and therefore replays
//! bit-rotted values into the memtable — the silent-corruption behavior
//! the integrity property tests demonstrate the checksums to prevent.

use std::rc::Rc;

use antipode_lineage::crc32c::crc32c;
use antipode_sim::SimTime;
use bytes::Bytes;

use crate::recovery::WalEntry;

/// Frame header: `u32` body length + `u32` CRC32C of the body.
pub const FRAME_HEADER: usize = 8;

/// Fixed body overhead beyond key and value bytes: key length (4), version
/// (8), value length (4), `visible_at` (8), `committed_at` (8).
pub const BODY_FIXED: usize = 32;

/// How a WAL frame failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalFaultKind {
    /// The frame extends past the end of the log: an append was interrupted
    /// mid-write (or a corrupt length points out of bounds). Recovery
    /// truncates to the verified prefix — a clean, bounded loss.
    TornFrame,
    /// The frame body does not match its checksum: bit rot inside the log.
    /// The replica cannot bound what else is damaged, so recovery
    /// quarantines it for anti-entropy back-fill.
    ChecksumMismatch,
}

/// The first bad frame a [`WalLog::scan`] found, with its exact offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalFault {
    /// Byte offset of the failing frame's header within the log.
    pub offset: usize,
    /// How the frame failed.
    pub kind: WalFaultKind,
}

/// The outcome of walking a log's frames in order.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every record decoded before the first fault (all of them when
    /// `fault` is `None`).
    pub entries: Vec<WalEntry>,
    /// Byte length of the verified prefix: truncating the log here removes
    /// the fault and everything after it.
    pub verified_len: usize,
    /// The first bad frame, if any.
    pub fault: Option<WalFault>,
}

/// A replica's write-ahead log as a byte artifact: framed, checksummed
/// records. The raw bytes are private to this module — everything outside
/// goes through the append/scan API (lint rule W1 enforces this even for
/// sibling modules that could reach a hypothetical public field).
///
/// # Deferred sealing
///
/// [`WalLog::append`] does not serialize: it stages the entry (two
/// refcount bumps) and the frame is materialized — serialized and sealed
/// with its CRC — lazily, the first time anything observes the byte
/// artifact: a fault injector, a [`WalLog::scan`] at restart, a scrub
/// reading [`WalLog::as_bytes`]. This mirrors a real group-commit WAL,
/// where the commit path hands the record to the flush buffer and framing
/// plus checksumming run on the flush path, off commit latency (the
/// engine-bench budget: integrity must not tax the hop). Sealing time is
/// unobservable because the framed bytes are a pure function of the entry
/// sequence — every observer seals first, so corruption always lands on
/// (and is checked against) fully sealed frames.
#[derive(Debug, Default)]
pub struct WalLog {
    bytes: Vec<u8>,
    records: usize,
    /// Byte offset of the most recent frame — where a torn tail write cuts.
    last_frame: usize,
    /// Appended but not yet sealed entries (the group-commit flush buffer).
    pending: Vec<WalEntry>,
    /// Framed byte length the pending entries will occupy once sealed,
    /// so [`WalLog::byte_len`] stays O(1) and seal-invariant.
    pending_bytes: usize,
}

impl WalLog {
    /// Number of complete records appended (and not torn off).
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether the log holds no complete records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Total bytes occupied by the log, including any torn partial frame
    /// and the not-yet-sealed tail. O(1) and independent of sealing state.
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + self.pending_bytes
    }

    /// The raw framed bytes of the log — what a scrub (or a fuzzer) would
    /// read back off disk. Feed to [`scan_frames`] to verify out of place.
    /// Seals any pending appends first.
    pub fn as_bytes(&mut self) -> &[u8] {
        self.seal();
        &self.bytes
    }

    /// Stages one record for the log; returns its framed byte length (the
    /// on-log footprint the engine counters track). Serialization and
    /// checksumming are deferred to [`WalLog::seal`] — see the type-level
    /// note on deferred sealing — so this is O(1) on the commit path: a
    /// move into the staging buffer, no byte copies.
    pub fn append(&mut self, entry: WalEntry) -> usize {
        let framed = FRAME_HEADER + entry.key.len() + entry.bytes.len() + BODY_FIXED;
        self.pending.push(entry);
        self.pending_bytes += framed;
        self.records += 1;
        framed
    }

    /// Materializes every pending append as a sealed frame: the flush path
    /// of the group-commit analogy. Idempotent; called by every observer of
    /// the byte artifact (scan, fault injection, raw access), so sealing
    /// time is unobservable.
    fn seal(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.bytes.reserve(self.pending_bytes);
        for entry in std::mem::take(&mut self.pending) {
            let body_len = entry.key.len() + entry.bytes.len() + BODY_FIXED;
            self.last_frame = self.bytes.len();
            self.bytes
                .extend_from_slice(&(body_len as u32).to_le_bytes());
            // Checksum placeholder, patched once the body is in place.
            self.bytes.extend_from_slice(&[0u8; 4]);
            let body_at = self.bytes.len();
            self.bytes
                .extend_from_slice(&(entry.key.len() as u32).to_le_bytes());
            self.bytes.extend_from_slice(entry.key.as_bytes());
            self.bytes.extend_from_slice(&entry.version.to_le_bytes());
            self.bytes
                .extend_from_slice(&(entry.bytes.len() as u32).to_le_bytes());
            self.bytes.extend_from_slice(&entry.bytes);
            self.bytes
                .extend_from_slice(&entry.visible_at.as_nanos().to_le_bytes());
            self.bytes
                .extend_from_slice(&entry.committed_at.as_nanos().to_le_bytes());
            let crc = crc32c(&self.bytes[body_at..]);
            self.bytes[body_at - 4..body_at].copy_from_slice(&crc.to_le_bytes());
        }
        self.pending_bytes = 0;
    }

    /// Walks the frames in order, verifying each checksum (when `verify`),
    /// and stops at the first bad frame. Never panics, whatever the bytes
    /// hold — arbitrary truncation and bit flips surface as a [`WalFault`]
    /// with the failing record's exact offset. Seals pending appends first.
    pub fn scan(&mut self, verify: bool) -> WalScan {
        self.seal();
        scan_frames(&self.bytes, verify)
    }

    /// Drops the fault and everything after it, keeping the verified
    /// prefix a previous [`WalLog::scan`] vouched for.
    pub fn truncate_to(&mut self, scan: &WalScan) {
        self.seal();
        self.bytes.truncate(scan.verified_len);
        self.records = scan.entries.len();
        self.last_frame = self.bytes.len();
    }

    /// Discards the log and re-frames `entries` from scratch — the
    /// epoch-bumped rejoin path, where a quarantined replica's back-filled
    /// memtable becomes its new durable truth.
    pub fn rebuild<'a>(&mut self, entries: impl Iterator<Item = &'a WalEntry>) -> u64 {
        self.bytes.clear();
        self.records = 0;
        self.last_frame = 0;
        self.pending.clear();
        self.pending_bytes = 0;
        let mut bytes = 0u64;
        for e in entries {
            bytes += self.append(e.clone()) as u64;
        }
        bytes
    }

    /// Fault injection ([`antipode_sim::fault::DiskFaultKind::TornWrite`]):
    /// cuts the tail frame roughly in half, as if the process lost power
    /// with the final `write(2)` half-applied. Returns the torn frame's
    /// offset, or `None` on an empty log.
    pub fn tear_tail(&mut self) -> Option<usize> {
        self.seal();
        if self.bytes.is_empty() {
            return None;
        }
        let frame_len = self.bytes.len() - self.last_frame;
        self.bytes.truncate(self.last_frame + frame_len / 2);
        self.records = self.records.saturating_sub(1);
        Some(self.last_frame)
    }

    /// Fault injection ([`antipode_sim::fault::DiskFaultKind::BitFlip`]):
    /// flips one deterministically sampled bit somewhere in the log. The
    /// offset mixes `offset_seed` with the log length, so a given fault
    /// window always damages the same byte of the same log. Returns the
    /// flipped offset, or `None` on an empty log.
    pub fn flip_byte(&mut self, offset_seed: u64) -> Option<usize> {
        self.seal();
        if self.bytes.is_empty() {
            return None;
        }
        let mix = splitmix64(offset_seed ^ self.bytes.len() as u64);
        let at = (mix % self.bytes.len() as u64) as usize;
        let bit = 1u8 << (splitmix64(mix) % 8) as u8;
        self.bytes[at] ^= bit;
        Some(at)
    }
}

/// Walks `bytes` as a sequence of `[len][crc][body]` frames. Public so the
/// integrity property tests can fuzz raw byte corruption without going
/// through a replica.
pub fn scan_frames(bytes: &[u8], verify: bool) -> WalScan {
    let mut scan = WalScan::default();
    let mut at = 0usize;
    while at < bytes.len() {
        let fault = |kind| Some(WalFault { offset: at, kind });
        if bytes.len() - at < FRAME_HEADER {
            scan.fault = fault(WalFaultKind::TornFrame);
            break;
        }
        let body_len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let stored_crc =
            u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        let body_at = at + FRAME_HEADER;
        if bytes.len() - body_at < body_len {
            scan.fault = fault(WalFaultKind::TornFrame);
            break;
        }
        let body = &bytes[body_at..body_at + body_len];
        if verify && crc32c(body) != stored_crc {
            scan.fault = fault(WalFaultKind::ChecksumMismatch);
            break;
        }
        match decode_body(body) {
            Some(entry) => scan.entries.push(entry),
            None => {
                // Structurally undecodable body. With verification on this
                // is unreachable for frames this module wrote; without it, a
                // corrupt length inside the body lands here. Either way the
                // frame boundary itself held, so the loss is bounded like a
                // torn write.
                scan.fault = fault(WalFaultKind::TornFrame);
                break;
            }
        }
        at = body_at + body_len;
    }
    scan.verified_len = at;
    scan
}

/// Decodes one frame body; `None` when its internal lengths disagree with
/// the frame (only reachable on corrupt input).
fn decode_body(body: &[u8]) -> Option<WalEntry> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        if body.len() - *at < n {
            return None;
        }
        let s = &body[*at..*at + n];
        *at += n;
        Some(s)
    };
    let key_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
    let key_bytes = take(&mut at, key_len)?;
    let key: Rc<str> = Rc::from(String::from_utf8_lossy(key_bytes).as_ref());
    let version = u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?);
    let val_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
    let bytes = Bytes::copy_from_slice(take(&mut at, val_len)?);
    let visible_at = SimTime::from_nanos(u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?));
    let committed_at = SimTime::from_nanos(u64::from_le_bytes(take(&mut at, 8)?.try_into().ok()?));
    (at == body.len()).then_some(WalEntry {
        key,
        version,
        bytes,
        visible_at,
        committed_at,
    })
}

/// SplitMix64 — the same deterministic mixer the property tests use to
/// derive per-seed parameters.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, version: u64, val: &[u8]) -> WalEntry {
        WalEntry {
            key: Rc::from(key),
            version,
            bytes: Bytes::copy_from_slice(val),
            visible_at: SimTime::from_millis(3),
            committed_at: SimTime::from_millis(1),
        }
    }

    fn sample_log() -> WalLog {
        let mut log = WalLog::default();
        log.append(entry("alpha", 1, b"first"));
        log.append(entry("beta", 2, b"second-value"));
        log.append(entry("alpha", 3, b"third"));
        // Tests below poke `log.bytes` directly, so hand them a sealed
        // artifact; `appends_seal_lazily_and_identically` covers the
        // deferred path.
        log.seal();
        log
    }

    #[test]
    fn appends_seal_lazily_and_identically() {
        let mut lazy = WalLog::default();
        lazy.append(entry("alpha", 1, b"first"));
        lazy.append(entry("beta", 2, b"second-value"));
        assert!(lazy.bytes.is_empty(), "append must not serialize");
        assert_eq!(lazy.byte_len(), lazy.pending_bytes);
        let mut eager = WalLog::default();
        eager.append(entry("alpha", 1, b"first"));
        eager.scan(true); // observation seals the first frame early
        eager.append(entry("beta", 2, b"second-value"));
        // Sealing time is unobservable: same entries, same artifact.
        assert_eq!(lazy.as_bytes(), eager.as_bytes());
        assert_eq!(lazy.byte_len(), eager.byte_len());
        assert_eq!(lazy.len(), 2);
        let scan = lazy.scan(true);
        assert!(scan.fault.is_none());
        assert_eq!(scan.entries.len(), 2);
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let mut log = sample_log();
        assert_eq!(log.len(), 3);
        let scan = log.scan(true);
        assert!(scan.fault.is_none());
        assert_eq!(scan.verified_len, log.byte_len());
        assert_eq!(scan.entries.len(), 3);
        let e = &scan.entries[1];
        assert_eq!(&*e.key, "beta");
        assert_eq!(e.version, 2);
        assert_eq!(e.bytes, Bytes::from_static(b"second-value"));
        assert_eq!(e.visible_at, SimTime::from_millis(3));
        assert_eq!(e.committed_at, SimTime::from_millis(1));
    }

    #[test]
    fn framed_length_matches_the_documented_footprint() {
        let mut log = WalLog::default();
        let n = log.append(entry("key", 9, b"value"));
        assert_eq!(n, FRAME_HEADER + BODY_FIXED + 3 + 5);
        assert_eq!(log.byte_len(), n);
    }

    #[test]
    fn torn_tail_is_detected_at_the_last_frame_and_truncation_heals() {
        let mut log = sample_log();
        let before_tear = log.scan(true);
        let torn_at = log.tear_tail().unwrap();
        assert_eq!(log.len(), 2);
        let scan = log.scan(true);
        assert_eq!(
            scan.fault,
            Some(WalFault {
                offset: torn_at,
                kind: WalFaultKind::TornFrame
            })
        );
        assert_eq!(scan.entries.len(), 2, "prefix records survive");
        assert_eq!(scan.verified_len, torn_at);
        log.truncate_to(&scan);
        let healed = log.scan(true);
        assert!(healed.fault.is_none());
        assert_eq!(healed.entries.len(), 2);
        assert_eq!(healed.entries[1].key, before_tear.entries[1].key);
    }

    #[test]
    fn every_single_bit_flip_is_caught_or_harmless_never_misread() {
        // Flip each bit of a small log in turn: the verified scan must
        // either still produce the original records (impossible — the seal
        // covers every body byte and the header bytes change the frame
        // geometry) or report a fault. It must never silently decode
        // different data.
        let mut reference = sample_log();
        let ref_scan = reference.scan(true);
        for byte in 0..reference.byte_len() {
            for bit in 0..8u8 {
                let mut log = sample_log();
                log.bytes[byte] ^= 1 << bit;
                let scan = log.scan(true);
                if scan.fault.is_none() {
                    panic!("flip at byte {byte} bit {bit} went undetected");
                }
                // Records before the fault are byte-identical to the
                // original prefix.
                for (got, want) in scan.entries.iter().zip(ref_scan.entries.iter()) {
                    assert_eq!(got.key, want.key);
                    assert_eq!(got.version, want.version);
                    assert_eq!(got.bytes, want.bytes);
                }
            }
        }
    }

    #[test]
    fn unverified_scan_accepts_bit_rot_in_a_value() {
        // The ablation: flip a value byte, scan without verification —
        // the corrupt record decodes silently.
        let mut log = sample_log();
        let scan = log.scan(true);
        // Locate the second frame's value bytes and flip one.
        let frame1_len = FRAME_HEADER + BODY_FIXED + 5 + 5; // "alpha"/"first"
        let val_at = frame1_len + FRAME_HEADER + 4 + 4 + 8 + 4; // into "second-value"
        log.bytes[val_at] ^= 0x01;
        let verified = log.scan(true);
        assert_eq!(
            verified.fault.map(|f| f.kind),
            Some(WalFaultKind::ChecksumMismatch)
        );
        assert_eq!(verified.fault.unwrap().offset, frame1_len);
        let unverified = log.scan(false);
        assert!(unverified.fault.is_none(), "ablation trusts the bytes");
        assert_ne!(
            unverified.entries[1].bytes, scan.entries[1].bytes,
            "the ablation silently serves the rotted value"
        );
    }

    #[test]
    fn flip_byte_is_deterministic_per_seed_and_log_length() {
        let mut a = sample_log();
        let mut b = sample_log();
        assert_eq!(a.flip_byte(42), b.flip_byte(42));
        assert_eq!(a.bytes, b.bytes);
        assert!(WalLog::default().flip_byte(42).is_none());
    }

    #[test]
    fn rebuild_reframes_from_entries() {
        let mut log = sample_log();
        log.flip_byte(7);
        let replacement = [entry("alpha", 3, b"third"), entry("beta", 2, b"x")];
        let bytes = log.rebuild(replacement.iter());
        assert_eq!(log.len(), 2);
        assert_eq!(bytes as usize, log.byte_len());
        let scan = log.scan(true);
        assert!(scan.fault.is_none());
        assert_eq!(&*scan.entries[0].key, "alpha");
    }

    #[test]
    fn arbitrary_truncations_never_panic_and_report_the_tail_offset() {
        let mut full = sample_log();
        let frame_bounds: Vec<usize> = {
            let mut at = 0;
            let mut bounds = vec![0];
            for e in full.scan(true).entries {
                at += FRAME_HEADER + BODY_FIXED + e.key.len() + e.bytes.len();
                bounds.push(at);
            }
            bounds
        };
        for cut in 0..full.byte_len() {
            let scan = scan_frames(&full.bytes[..cut], true);
            // The fault (if the cut is not on a frame boundary) sits at the
            // last frame boundary at or before the cut.
            let boundary = *frame_bounds
                .iter()
                .take_while(|b| **b <= cut)
                .last()
                .unwrap();
            if cut == boundary {
                assert!(scan.fault.is_none(), "cut {cut} is a clean boundary");
            } else {
                assert_eq!(
                    scan.fault,
                    Some(WalFault {
                        offset: boundary,
                        kind: WalFaultKind::TornFrame
                    }),
                    "cut {cut}"
                );
            }
            assert_eq!(scan.verified_len, boundary);
        }
    }
}

//! The geo-replicated queue / publish-subscribe family, as a facade over the
//! shared replication engine.
//!
//! A publish commits at the origin broker, then a delivery event propagates
//! to each region with a lag from the store's [`QueueProfile`]; subscribers
//! in that region receive the message on their channel. Deliveries are the
//! engine's replica applies (keyed `msg-{id}`), so visibility waiters mirror
//! the KV family and — new with the engine — queue brokers participate in
//! the whole recovery plane: crash-restart with WAL replay, hinted handoff
//! for suppressed deliveries, and anti-entropy repair
//! ([`crate::recovery`], [`crate::repair`]).
//!
//! Acks, subscriber channels, and consumer groups are broker *metadata*
//! layered above the replicated delivery record (see
//! [`crate::substrate::QueueSubstrate`]); they model durable state and
//! survive crash windows.

use std::rc::Rc;
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::net::Network;
use antipode_sim::sync::{channel, oneshot, Receiver};
use antipode_sim::{Region, Sim, SimTime};
use bytes::Bytes;

use crate::engine::{Engine, ReplicaHealth};
use crate::probe::{VisibilityEvent, VisibilityProbe};
use crate::repair::{RepairConfig, RepairReport, ScrubReport};
use crate::substrate::{hand_to_group, AckWaiter, QueueSubstrate, StoreError};

/// Latency model for one queue / pub-sub store type.
#[derive(Clone, Debug)]
pub struct QueueProfile {
    /// Publish (enqueue) latency at the origin.
    pub local_publish: Dist,
    /// Extra cross-region delivery lag beyond network transit.
    pub delivery: Dist,
    /// Delivery lag to subscribers in the origin region itself.
    pub local_delivery: Dist,
    /// How many one-way network delays a cross-region delivery costs.
    pub rtt_hops: f64,
}

impl Default for QueueProfile {
    fn default() -> Self {
        QueueProfile {
            local_publish: Dist::constant_ms(1.0),
            delivery: Dist::lognormal_ms(100.0, 0.4),
            local_delivery: Dist::constant_ms(2.0),
            rtt_hops: 1.0,
        }
    }
}

/// A message delivered to subscribers.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueMessage {
    /// Store-assigned message id (also the version in write identifiers).
    pub id: u64,
    /// The payload (shims store [`crate::envelope::Envelope`]s here).
    pub payload: Bytes,
    /// Virtual time the publish committed at the origin.
    pub published_at: SimTime,
}

impl QueueMessage {
    /// The key under which this message appears in write identifiers.
    pub fn key(&self) -> String {
        format!("msg-{}", self.id)
    }
}

fn msg_key(id: u64) -> String {
    format!("msg-{id}")
}

/// A simulated geo-replicated queue / pub-sub system.
#[derive(Clone)]
pub struct QueueStore {
    pub(crate) engine: Engine<QueueSubstrate>,
}

impl QueueStore {
    /// Creates a queue named `name` spanning the given regions.
    pub fn new(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        profile: QueueProfile,
    ) -> Self {
        QueueStore {
            engine: Engine::new(
                sim,
                net,
                name,
                regions,
                QueueSubstrate::new(profile, regions),
            ),
        }
    }

    /// The store's name (what write identifiers refer to).
    pub fn name(&self) -> &str {
        self.engine.name()
    }

    /// The regions this queue spans.
    pub fn regions(&self) -> &[Region] {
        self.engine.regions()
    }

    /// Replaces the broker's [`crate::recovery::RecoveryConfig`] (WAL and
    /// hinted-handoff knobs). Effective for subsequent operations.
    pub fn set_recovery(&self, cfg: crate::recovery::RecoveryConfig) {
        self.engine.set_recovery(cfg);
    }

    /// The broker's current recovery configuration.
    pub fn recovery_config(&self) -> crate::recovery::RecoveryConfig {
        self.engine.recovery_config()
    }

    /// Publishes a message from `origin`; returns its id after the publish
    /// commits. Delivery to each region (including the origin) proceeds
    /// asynchronously. A broker outage blocks the publish itself; the
    /// publisher resumes the moment the outage window closes. A broker
    /// replica that crash-restarts *during* the commit surfaces
    /// [`StoreError::CrashedEpoch`] (the publishing process died with it).
    pub async fn publish(&self, origin: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.engine.commit(origin, None, payload).await
    }

    /// Installs an observation hook invoked at every delivery and ack; see
    /// [`crate::probe`]. Pass `None` to remove it.
    pub fn set_probe(&self, probe: Option<VisibilityProbe>) {
        self.engine.set_probe(probe);
    }

    /// Back-pressure injection: bound the number of in-flight delivery
    /// sends. A publish that would exceed the bound is rejected with
    /// [`StoreError::Overloaded`]. Pass `None` to lift the bound.
    pub fn set_send_capacity(&self, cap: Option<usize>) {
        self.engine.set_send_capacity(cap);
    }

    /// Toggles batched delivery fan-out (on by default). `false` selects
    /// the determinism ablation: one virtual-time event per delivery entry
    /// instead of one per batch — same trace, unbatched event counts (see
    /// [`crate::batch`]).
    pub fn set_batching(&self, on: bool) {
        self.engine.set_batching(on);
    }

    /// Whether batched fan-out is enabled.
    pub fn batching(&self) -> bool {
        self.engine.batching()
    }

    /// Queued-but-undelivered delivery sends (diagnostics).
    pub fn pending_sends(&self) -> usize {
        self.engine.pending_sends()
    }

    /// Subscribes to messages delivered in `region`. Every subscriber
    /// receives every message delivered after it subscribed.
    pub fn subscribe(&self, region: Region) -> Result<Receiver<QueueMessage>, StoreError> {
        let (tx, rx) = channel();
        self.engine
            .substrate()
            .pubsub
            .borrow_mut()
            .get_mut(&region)
            .ok_or(StoreError::NoSuchRegion(region))?
            .subscribers
            .push(tx);
        Ok(rx)
    }

    /// Joins a *consumer group* in `region` (work-queue / competing-consumer
    /// semantics): each message delivered in the region is taken by exactly
    /// one member of each group, in delivery order. The group springs into
    /// existence on first join; messages delivered before any member joined
    /// queue up for it.
    pub fn join_group(
        &self,
        region: Region,
        group: impl Into<String>,
    ) -> Result<GroupConsumer, StoreError> {
        let group = group.into();
        self.engine
            .substrate()
            .pubsub
            .borrow_mut()
            .get_mut(&region)
            .ok_or(StoreError::NoSuchRegion(region))?
            .groups
            .entry(group.clone())
            .or_default();
        Ok(GroupConsumer {
            store: self.clone(),
            region,
            group,
        })
    }

    /// Whether message `id` has been delivered in `region`.
    pub fn is_visible(&self, region: Region, id: u64) -> bool {
        self.engine.is_visible(region, &msg_key(id), id)
    }

    /// Resolves once message `id` is delivered in `region`. Never errors on
    /// faults: a waiter cancelled by a broker crash silently resubscribes
    /// and resolves when the delivery eventually lands.
    pub async fn wait_visible(&self, region: Region, id: u64) -> Result<(), StoreError> {
        self.engine.wait_visible(region, &msg_key(id), id).await
    }

    /// Acknowledges message `id` in `region`: the consumer has finished
    /// processing it (and committed any resulting writes). Work-queue shims
    /// implement `wait` against acks rather than deliveries — a store-
    /// specific visibility semantic (§6.3: `wait` is opaque per store).
    /// Ack state is durable broker metadata: it survives outage and
    /// crash-restart windows.
    pub fn ack(&self, region: Region, id: u64) -> Result<(), StoreError> {
        {
            self.note_ack_access(region, id);
            let mut pubsub = self.engine.substrate().pubsub.borrow_mut();
            let rs = pubsub
                .get_mut(&region)
                .ok_or(StoreError::NoSuchRegion(region))?;
            rs.acked.insert(id);
            let mut i = 0;
            while i < rs.ack_waiters.len() {
                if rs.ack_waiters[i].id == id {
                    // lint: allow(scheduler-bypass, ack waiters are store bookkeeping —
                    // the woken wait_acked future still runs only when the executor's
                    // Schedule picks it)
                    let w = rs.ack_waiters.swap_remove(i);
                    let _ = w.tx.send(());
                } else {
                    i += 1;
                }
            }
        }
        self.engine.emit(VisibilityEvent::QueueAcked {
            store: self.engine.name().to_string(),
            region,
            id,
            at: self.engine.sim().now(),
        });
        Ok(())
    }

    /// Reports an ack-state touch to the schedule-exploration footprint
    /// recorder: ack metadata is shared broker state outside the engine's
    /// replica maps, so it needs its own dependence key.
    fn note_ack_access(&self, region: Region, id: u64) {
        if antipode_sim::schedule::is_recording() {
            antipode_sim::schedule::note_access(antipode_sim::schedule::resource_id(&[
                self.engine.name(),
                region.name(),
                "ack",
                &id.to_string(),
            ]));
        }
    }

    /// Whether message `id` has been acknowledged in `region`.
    pub fn is_acked(&self, region: Region, id: u64) -> bool {
        self.note_ack_access(region, id);
        self.engine
            .substrate()
            .pubsub
            .borrow()
            .get(&region)
            .map(|s| s.acked.contains(&id))
            .unwrap_or(false)
    }

    /// Resolves once message `id` is acknowledged in `region`.
    pub async fn wait_acked(&self, region: Region, id: u64) -> Result<(), StoreError> {
        loop {
            let rx = {
                self.note_ack_access(region, id);
                let mut pubsub = self.engine.substrate().pubsub.borrow_mut();
                let rs = pubsub
                    .get_mut(&region)
                    .ok_or(StoreError::NoSuchRegion(region))?;
                if rs.acked.contains(&id) {
                    return Ok(());
                }
                let (tx, rx) = oneshot();
                rs.ack_waiters.push(AckWaiter { id, tx });
                rx
            };
            if rx.await.is_ok() {
                return Ok(());
            }
        }
    }

    /// Fault injection: hold deliveries to `region` until resumed. Thin
    /// wrapper over the simulation's [`antipode_sim::fault::FaultPlan`].
    pub fn pause_delivery(&self, region: Region) {
        self.engine
            .faults()
            .pause_queue_delivery(self.engine.name(), region);
    }

    /// Ends a [`QueueStore::pause_delivery`] stall.
    pub fn resume_delivery(&self, region: Region) {
        self.engine
            .faults()
            .resume_queue_delivery(self.engine.name(), region);
    }

    /// Fault injection: probability each delivery attempt is dropped
    /// (dropped attempts are redelivered after the redelivery interval).
    /// Thin wrapper over the [`antipode_sim::fault::FaultPlan`].
    pub fn set_delivery_drop_probability(&self, p: f64) {
        self.engine
            .faults()
            .set_delivery_drop(self.engine.name(), p);
    }

    /// Sets the backoff before a dropped delivery attempt is retried.
    pub fn set_redelivery_interval(&self, d: Dist) {
        *self.engine.substrate().redelivery.borrow_mut() = d;
    }

    /// Enables (or disables, with `None`) the consumer-group visibility
    /// timeout: a message taken by a group member but not acknowledged
    /// within `t` is redelivered to the group, so a crashed consumer cannot
    /// strand it. Mirrors SQS-style at-least-once work queues.
    pub fn set_visibility_timeout(&self, t: Option<Duration>) {
        self.engine.substrate().visibility_timeout.set(t);
    }

    /// Number of write-ahead-log entries at a broker replica (diagnostics).
    pub fn wal_len(&self, region: Region) -> usize {
        self.engine.wal_len(region)
    }

    /// Number of pending visibility waiters at a broker replica
    /// (diagnostics).
    pub fn waiter_count(&self, region: Region) -> usize {
        self.engine.waiter_count(region)
    }

    /// Number of queued hinted-handoff entries (diagnostics).
    pub fn pending_hints(&self) -> usize {
        self.engine.pending_hints()
    }

    /// Whether every broker replica holds an identical delivery record; see
    /// [`crate::repair`].
    pub fn converged(&self) -> bool {
        self.engine.converged()
    }

    /// One anti-entropy round over the broker replicas; see
    /// [`crate::repair`]. Back-filled deliveries notify subscribers and
    /// consumer groups exactly like first-time deliveries.
    pub async fn repair_sweep(&self) -> RepairReport {
        self.engine.repair_sweep().await
    }

    /// Starts the periodic anti-entropy loop; see [`crate::repair`].
    pub fn enable_anti_entropy(&self, cfg: RepairConfig) {
        self.engine.enable_anti_entropy(cfg);
    }

    /// Integrity standing of a broker replica; see
    /// [`crate::engine::ReplicaHealth`] and [`crate::repair`].
    pub fn replica_health(&self, region: Region) -> ReplicaHealth {
        self.engine.replica_health(region)
    }

    /// Whether every broker replica holds byte-identical delivery records;
    /// see [`crate::repair`].
    pub fn converged_bytes(&self) -> bool {
        self.engine.converged_bytes()
    }

    /// One scrub round over the broker replicas' WALs; see
    /// [`crate::repair`].
    pub fn scrub_sweep(&self) -> ScrubReport {
        self.engine.scrub_sweep()
    }

    /// Starts the periodic scrub loop; see [`crate::repair`].
    pub fn enable_scrub(&self, cfg: RepairConfig) {
        self.engine.enable_scrub(cfg);
    }

    /// Hands a message back to a group: a live waiter gets it immediately,
    /// otherwise it queues as pending.
    fn requeue_for_group(&self, region: Region, group: &str, msg: QueueMessage) {
        let mut pubsub = self.engine.substrate().pubsub.borrow_mut();
        let Some(gs) = pubsub
            .get_mut(&region)
            .and_then(|rs| rs.groups.get_mut(group))
        else {
            return;
        };
        hand_to_group(gs, msg);
    }
}

/// A member of a consumer group; see [`QueueStore::join_group`].
#[derive(Clone)]
pub struct GroupConsumer {
    store: QueueStore,
    region: Region,
    group: String,
}

impl GroupConsumer {
    /// Takes the next message destined for this group (exactly-once within
    /// the group, at-least-once when a visibility timeout is set). Waits if
    /// none is pending.
    pub async fn take(&self) -> QueueMessage {
        loop {
            let rx = {
                let mut pubsub = self.store.engine.substrate().pubsub.borrow_mut();
                // The region was validated and the group created at join
                // time; regions and groups are never removed, so re-creating
                // the group entry on a miss is a deterministic no-op.
                let gs = pubsub
                    .entry(self.region)
                    .or_default()
                    .groups
                    .entry(self.group.clone())
                    .or_default();
                if let Some(m) = gs.pending.pop_front() {
                    drop(pubsub);
                    self.arm_redelivery(&m);
                    return m;
                }
                let (tx, rx) = oneshot();
                gs.waiters.push_back(tx);
                rx
            };
            if let Ok(m) = rx.await {
                self.arm_redelivery(&m);
                return m;
            }
        }
    }

    /// Non-blocking take.
    pub fn try_take(&self) -> Option<QueueMessage> {
        let m = {
            let mut pubsub = self.store.engine.substrate().pubsub.borrow_mut();
            pubsub
                .get_mut(&self.region)?
                .groups
                .get_mut(&self.group)?
                .pending
                .pop_front()?
        };
        self.arm_redelivery(&m);
        Some(m)
    }

    /// If a visibility timeout is configured, schedule the message for
    /// redelivery to this group unless it gets acked in time.
    fn arm_redelivery(&self, msg: &QueueMessage) {
        let Some(timeout) = self.store.engine.substrate().visibility_timeout.get() else {
            return;
        };
        let store = self.store.clone();
        let region = self.region;
        let group = self.group.clone();
        let msg = msg.clone();
        let sim = store.engine.sim().clone();
        sim.spawn(async move {
            store.engine.sim().sleep(timeout).await;
            // If the broker is down (outage or crash-restart window) when
            // the timer fires, hold the redelivery decision until it
            // restarts: the restarted broker reads the *current* ack state.
            // Deciding mid-outage would redeliver a message whose ack raced
            // the crash — a duplicate delivery the group already processed.
            {
                let faults = store.engine.faults().clone();
                let q = store.clone();
                faults
                    .until_clear(store.engine.sim(), move |at| {
                        q.engine.faults().queue_down(at, q.engine.name())
                            || q.engine
                                .faults()
                                .replica_crashed(at, q.engine.name(), region)
                    })
                    .await;
            }
            if !store.is_acked(region, msg.id) {
                store.requeue_for_group(region, &group, msg);
            }
        });
    }

    /// Acknowledges a taken message (work-queue wait semantics).
    pub fn ack(&self, msg: &QueueMessage) -> Result<(), StoreError> {
        self.store.ack(self.region, msg.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::{EU, US};
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::time::Duration;

    fn setup() -> (Sim, QueueStore) {
        let sim = Sim::new(3);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(
            &sim,
            net,
            "sns",
            &[EU, US],
            QueueProfile {
                local_publish: Dist::constant_ms(1.0),
                delivery: Dist::constant_ms(80.0),
                local_delivery: Dist::constant_ms(2.0),
                rtt_hops: 1.0,
            },
        );
        (sim, q)
    }

    #[test]
    fn publish_delivers_to_remote_subscriber() {
        let (sim, q) = setup();
        let q2 = q.clone();
        let msg = sim.block_on(async move {
            let mut sub = q2.subscribe(US).unwrap();
            q2.publish(EU, Bytes::from_static(b"notif")).await.unwrap();
            sub.recv().await.unwrap()
        });
        assert_eq!(msg.payload, Bytes::from_static(b"notif"));
        // One-way EU→US ≈ 45ms + 80ms extra.
        assert!(sim.now().since(SimTime::ZERO) >= Duration::from_millis(100));
    }

    #[test]
    fn local_subscriber_gets_message_quickly() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let mut sub = q2.subscribe(EU).unwrap();
            q2.publish(EU, Bytes::from_static(b"x")).await.unwrap();
            sub.recv().await.unwrap();
        });
        assert!(sim.now().since(SimTime::ZERO) < Duration::from_millis(20));
    }

    #[test]
    fn message_ids_are_unique() {
        let (sim, q) = setup();
        let q2 = q.clone();
        let (a, b) = sim.block_on(async move {
            let a = q2.publish(EU, Bytes::new()).await.unwrap();
            let b = q2.publish(EU, Bytes::new()).await.unwrap();
            (a, b)
        });
        assert_ne!(a, b);
    }

    #[test]
    fn wait_visible_subscribes_to_delivery() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let id = q2.publish(EU, Bytes::from_static(b"n")).await.unwrap();
            assert!(!q2.is_visible(US, id));
            q2.wait_visible(US, id).await.unwrap();
            assert!(q2.is_visible(US, id));
        });
    }

    #[test]
    fn multiple_subscribers_all_receive() {
        let (sim, q) = setup();
        let q2 = q.clone();
        let n = sim.block_on(async move {
            let mut s1 = q2.subscribe(US).unwrap();
            let mut s2 = q2.subscribe(US).unwrap();
            q2.publish(EU, Bytes::from_static(b"b")).await.unwrap();
            let a = s1.recv().await.unwrap();
            let b = s2.recv().await.unwrap();
            assert_eq!(a, b);
            2
        });
        assert_eq!(n, 2);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let sub = q2.subscribe(US).unwrap();
            drop(sub);
            // Publishing must not fail or leak; the dead subscriber is pruned.
            let id = q2.publish(EU, Bytes::new()).await.unwrap();
            q2.wait_visible(US, id).await.unwrap();
        });
    }

    #[test]
    fn unknown_region_errors() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let bogus = Region("nowhere");
            assert!(q2.publish(bogus, Bytes::new()).await.is_err());
            assert!(q2.subscribe(bogus).is_err());
            assert!(q2.wait_visible(bogus, 1).await.is_err());
        });
    }

    #[test]
    fn paused_delivery_stalls_until_resume() {
        let (sim, q) = setup();
        q.pause_delivery(US);
        let q2 = q.clone();
        let got: Rc<RefCell<Option<QueueMessage>>> = Rc::new(RefCell::new(None));
        let slot = got.clone();
        sim.spawn(async move {
            let mut sub = q2.subscribe(US).unwrap();
            q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            *slot.borrow_mut() = sub.recv().await;
        });
        sim.run_for(Duration::from_secs(5));
        assert!(got.borrow().is_none());
        q.resume_delivery(US);
        sim.run_for(Duration::from_secs(5));
        assert!(got.borrow().is_some());
    }

    #[test]
    fn group_members_compete_for_messages() {
        let (sim, q) = setup();
        let n = 12usize;
        let taken: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        // Three competing workers in one group.
        for worker in 0..3usize {
            let consumer = q.join_group(US, "workers").unwrap();
            let taken = taken.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                loop {
                    let m = consumer.take().await;
                    // Hold the message briefly so work spreads out.
                    sim2.sleep(Duration::from_millis(30)).await;
                    consumer.ack(&m).unwrap();
                    taken.borrow_mut().push((worker, m.id));
                }
            });
        }
        let q2 = q.clone();
        let ids = sim.block_on(async move {
            let mut ids = Vec::new();
            for _ in 0..n {
                ids.push(q2.publish(EU, Bytes::from_static(b"job")).await.unwrap());
            }
            ids
        });
        sim.run();
        let taken = taken.borrow();
        // Exactly once across the whole group…
        let mut got: Vec<u64> = taken.iter().map(|(_, id)| *id).collect();
        got.sort_unstable();
        let mut want = ids;
        want.sort_unstable();
        assert_eq!(got, want);
        // …and the work actually spread over multiple workers.
        let workers: BTreeSet<usize> = taken.iter().map(|(w, _)| *w).collect();
        assert!(workers.len() >= 2, "work went to {workers:?}");
    }

    #[test]
    fn groups_are_independent_but_subscribers_see_all() {
        let (sim, q) = setup();
        let a = q.join_group(US, "a").unwrap();
        let b = q.join_group(US, "b").unwrap();
        let q2 = q.clone();
        sim.block_on(async move {
            let mut sub = q2.subscribe(US).unwrap();
            let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            // Each group gets its own copy; the pub/sub subscriber too.
            assert_eq!(a.take().await.id, id);
            assert_eq!(b.take().await.id, id);
            assert_eq!(sub.recv().await.unwrap().id, id);
        });
    }

    #[test]
    fn messages_queue_for_slow_groups() {
        let (sim, q) = setup();
        let consumer = q.join_group(US, "g").unwrap();
        let q2 = q.clone();
        sim.block_on(async move {
            let id1 = q2.publish(EU, Bytes::new()).await.unwrap();
            let id2 = q2.publish(EU, Bytes::new()).await.unwrap();
            // Nobody is waiting: both messages pend in order.
            let m1 = consumer.take().await;
            let m2 = consumer.take().await;
            assert_eq!((m1.id, m2.id), (id1, id2));
            assert!(consumer.try_take().is_none());
        });
    }

    #[test]
    fn message_key_format() {
        let m = QueueMessage {
            id: 42,
            payload: Bytes::new(),
            published_at: SimTime::ZERO,
        };
        assert_eq!(m.key(), "msg-42");
    }

    #[test]
    fn broker_crash_wipes_delivery_record_and_wal_restores_it() {
        use antipode_sim::fault::FaultKind;
        let (sim, q) = setup();
        let q2 = q.clone();
        let id = sim.block_on(async move {
            let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            q2.wait_visible(US, id).await.unwrap();
            id
        });
        assert!(q.wal_len(US) >= 1, "deliveries are WAL-logged");
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "sns".into(),
                region: US,
            },
        );
        // Mid-window: the broker's volatile delivery record is gone, but ack
        // and group metadata (durable) survive.
        sim.run_until(SimTime::from_secs(6));
        assert!(!q.is_visible(US, id), "crash wipes the delivery record");
        // Post-restart: WAL replay restored the record at the heal edge.
        sim.run_until(SimTime::from_secs(9));
        assert!(q.is_visible(US, id), "WAL replay restores deliveries");
        assert!(q.converged());
    }

    #[test]
    fn broker_crash_cancelled_wait_resubscribes_and_resolves() {
        use antipode_sim::fault::FaultKind;
        let (sim, q) = setup();
        // Crash the US broker replica before the delivery can land; the
        // in-flight delivery parks as a hint and flushes at the heal edge.
        sim.faults().schedule(
            SimTime::from_millis(10),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "sns".into(),
                region: US,
            },
        );
        let q2 = q.clone();
        sim.block_on(async move {
            let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            // Queue waits never error on faults: the waiter cancelled at the
            // crash edge resubscribes and resolves after restart.
            q2.wait_visible(US, id).await.unwrap();
            assert!(q2.engine.sim().now() >= SimTime::from_secs(8));
        });
        assert_eq!(q.pending_hints(), 0, "hint flushed at the heal edge");
    }

    #[test]
    fn partitioned_delivery_parks_as_hint_and_flushes_at_heal() {
        use antipode_sim::fault::FaultKind;
        let (sim, q) = setup();
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(20),
            FaultKind::Partition { a: EU, b: US },
        );
        let q2 = q.clone();
        sim.block_on(async move {
            let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            // EU's own delivery lands; the EU→US delivery parks as a hint.
            q2.wait_visible(EU, id).await.unwrap();
            assert!(!q2.is_visible(US, id));
            q2.wait_visible(US, id).await.unwrap();
            assert!(q2.engine.sim().now() >= SimTime::from_secs(20));
        });
        assert_eq!(q.pending_hints(), 0);
        assert!(q.converged());
    }
}

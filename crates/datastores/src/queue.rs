//! The geo-replicated queue / publish-subscribe framework underlying the
//! simulated notifier stores (SNS, AMQ, RabbitMQ, DynamoDB streams).
//!
//! A publish commits at the origin, then a delivery event propagates to each
//! region with a lag from the store's [`QueueProfile`]; subscribers in that
//! region receive the message on their channel. Visibility waiters mirror
//! the KV framework so shims can implement `wait` on queued messages too.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::fault::FaultPlan;
use antipode_sim::net::Network;
use antipode_sim::rng::SimRng;
use antipode_sim::sync::{channel, oneshot, OneSender, Receiver, Sender};
use antipode_sim::{Region, Sim, SimTime};
use bytes::Bytes;

use crate::probe::{VisibilityEvent, VisibilityProbe};
use crate::replica::StoreError;

/// Latency model for one queue / pub-sub store type.
#[derive(Clone, Debug)]
pub struct QueueProfile {
    /// Publish (enqueue) latency at the origin.
    pub local_publish: Dist,
    /// Extra cross-region delivery lag beyond network transit.
    pub delivery: Dist,
    /// Delivery lag to subscribers in the origin region itself.
    pub local_delivery: Dist,
    /// How many one-way network delays a cross-region delivery costs.
    pub rtt_hops: f64,
}

impl Default for QueueProfile {
    fn default() -> Self {
        QueueProfile {
            local_publish: Dist::constant_ms(1.0),
            delivery: Dist::lognormal_ms(100.0, 0.4),
            local_delivery: Dist::constant_ms(2.0),
            rtt_hops: 1.0,
        }
    }
}

/// A message delivered to subscribers.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueMessage {
    /// Store-assigned message id (also the version in write identifiers).
    pub id: u64,
    /// The payload (shims store [`crate::envelope::Envelope`]s here).
    pub payload: Bytes,
    /// Virtual time the publish committed at the origin.
    pub published_at: SimTime,
}

impl QueueMessage {
    /// The key under which this message appears in write identifiers.
    pub fn key(&self) -> String {
        format!("msg-{}", self.id)
    }
}

struct Waiter {
    id: u64,
    tx: OneSender<()>,
}

#[derive(Default)]
struct GroupState {
    pending: std::collections::VecDeque<QueueMessage>,
    waiters: std::collections::VecDeque<OneSender<QueueMessage>>,
}

#[derive(Default)]
struct RegionState {
    delivered: BTreeSet<u64>,
    acked: BTreeSet<u64>,
    subscribers: Vec<Sender<QueueMessage>>,
    waiters: Vec<Waiter>,
    ack_waiters: Vec<Waiter>,
    // Iterated on every delivery (each group gets one copy of the message),
    // so the order must be deterministic: a hash map here leaks iteration
    // order into consumer wake-up order.
    groups: BTreeMap<String, GroupState>,
}

struct QueueInner {
    name: String,
    sim: Sim,
    net: Rc<Network>,
    profile: QueueProfile,
    regions: Vec<Region>,
    state: RefCell<BTreeMap<Region, RegionState>>,
    next_id: Cell<u64>,
    rng: RefCell<SimRng>,
    /// The simulation-wide chaos schedule (broker outages, delivery drops,
    /// pauses, partitions).
    faults: FaultPlan,
    /// Backoff before a dropped delivery attempt is retried.
    redelivery: RefCell<Dist>,
    /// When set, a message taken by a group consumer that is not acked
    /// within this interval is redelivered to the group — so a crashed
    /// consumer cannot strand a message.
    visibility_timeout: Cell<Option<Duration>>,
    /// Optional observation hook for dynamic analysis (race detection).
    probe: RefCell<Option<VisibilityProbe>>,
}

impl QueueInner {
    fn emit(&self, event: VisibilityEvent) {
        if let Some(p) = self.probe.borrow().clone() {
            p(&event);
        }
    }
}

/// A simulated geo-replicated queue / pub-sub system.
#[derive(Clone)]
pub struct QueueStore {
    inner: Rc<QueueInner>,
}

impl QueueStore {
    /// Creates a queue named `name` spanning the given regions.
    pub fn new(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        profile: QueueProfile,
    ) -> Self {
        let name = name.into();
        assert!(!regions.is_empty(), "a queue needs at least one region");
        let rng = RefCell::new(sim.rng(&format!("queue:{name}")));
        let state = regions
            .iter()
            .map(|r| (*r, RegionState::default()))
            .collect();
        QueueStore {
            inner: Rc::new(QueueInner {
                name,
                sim: sim.clone(),
                net,
                profile,
                regions: regions.to_vec(),
                state: RefCell::new(state),
                next_id: Cell::new(1),
                rng,
                faults: sim.faults(),
                redelivery: RefCell::new(Dist::constant_ms(200.0)),
                visibility_timeout: Cell::new(None),
                probe: RefCell::new(None),
            }),
        }
    }

    /// The store's name (what write identifiers refer to).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The regions this queue spans.
    pub fn regions(&self) -> &[Region] {
        &self.inner.regions
    }

    fn check_region(&self, region: Region) -> Result<(), StoreError> {
        if self.inner.state.borrow().contains_key(&region) {
            Ok(())
        } else {
            Err(StoreError::NoSuchRegion(region))
        }
    }

    /// Publishes a message from `origin`; returns its id after the publish
    /// commits. Delivery to each region (including the origin) proceeds
    /// asynchronously.
    pub async fn publish(&self, origin: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.check_region(origin)?;
        // A broker outage blocks the publish itself; the publisher resumes
        // the moment the outage window closes.
        {
            let faults = self.inner.faults.clone();
            let q = self.clone();
            faults
                .until_clear(&self.inner.sim, move |at| {
                    q.inner.faults.queue_down(at, &q.inner.name)
                })
                .await;
        }
        let lat = {
            let mut rng = self.inner.rng.borrow_mut();
            self.inner.profile.local_publish.sample_duration(&mut rng)
        };
        self.inner.sim.sleep(lat).await;
        let id = self.inner.next_id.get();
        self.inner.next_id.set(id + 1);
        let published_at = self.inner.sim.now();
        for dest in self.inner.regions.clone() {
            let lag = {
                let mut rng = self.inner.rng.borrow_mut();
                if dest == origin {
                    self.inner.profile.local_delivery.sample_duration(&mut rng)
                } else {
                    let extra = self.inner.profile.delivery.sample_duration(&mut rng);
                    let transit = self
                        .inner
                        .net
                        .delay(&mut *rng, origin, dest)
                        .mul_f64(self.inner.profile.rtt_hops);
                    extra + transit
                }
            };
            let store = self.clone();
            let payload = payload.clone();
            self.inner.sim.spawn(async move {
                store.inner.sim.sleep(lag).await;
                // Each delivery attempt can be dropped (broker-side loss);
                // dropped attempts are redelivered after a backoff.
                loop {
                    let drop_p = store
                        .inner
                        .faults
                        .delivery_drop(store.inner.sim.now(), &store.inner.name);
                    let (dropped, backoff) = {
                        let mut rng = store.inner.rng.borrow_mut();
                        let dropped = {
                            use rand::Rng;
                            drop_p > 0.0 && rng.random::<f64>() < drop_p
                        };
                        let backoff = store.inner.redelivery.borrow().sample_duration(&mut rng);
                        (dropped, backoff)
                    };
                    if !dropped {
                        break;
                    }
                    store.inner.sim.sleep(backoff).await;
                }
                // A paused destination, broker outage, or severed link holds
                // the delivery until the fault clears.
                let faults = store.inner.faults.clone();
                let blocked = store.clone();
                faults
                    .until_clear(&store.inner.sim, move |at| {
                        blocked
                            .inner
                            .faults
                            .delivery_paused(at, &blocked.inner.name, dest)
                            || blocked.inner.faults.queue_down(at, &blocked.inner.name)
                            || (dest != origin
                                && blocked.inner.faults.link_blocked(at, origin, dest))
                    })
                    .await;
                store.deliver(
                    dest,
                    QueueMessage {
                        id,
                        payload,
                        published_at,
                    },
                );
            });
        }
        Ok(id)
    }

    fn deliver(&self, region: Region, msg: QueueMessage) {
        let mut state = self.inner.state.borrow_mut();
        // Deliveries only target configured regions; treat a miss as a
        // dropped delivery rather than tearing the run down.
        let Some(rs) = state.get_mut(&region) else {
            return;
        };
        rs.delivered.insert(msg.id);
        rs.subscribers.retain(|sub| sub.send(msg.clone()).is_ok());
        // Each consumer group receives the message exactly once: hand it to
        // a waiting consumer if any, else queue it for the next take.
        for group in rs.groups.values_mut() {
            hand_to_group(group, msg.clone());
        }
        let mut i = 0;
        while i < rs.waiters.len() {
            if rs.waiters[i].id == msg.id {
                let w = rs.waiters.swap_remove(i);
                let _ = w.tx.send(());
            } else {
                i += 1;
            }
        }
        drop(state);
        self.inner.emit(VisibilityEvent::QueueDelivered {
            store: self.inner.name.clone(),
            region,
            id: msg.id,
            at: self.inner.sim.now(),
        });
    }

    /// Installs an observation hook invoked at every delivery and ack; see
    /// [`crate::probe`]. Pass `None` to remove it.
    pub fn set_probe(&self, probe: Option<VisibilityProbe>) {
        *self.inner.probe.borrow_mut() = probe;
    }

    /// Subscribes to messages delivered in `region`. Every subscriber
    /// receives every message delivered after it subscribed.
    pub fn subscribe(&self, region: Region) -> Result<Receiver<QueueMessage>, StoreError> {
        let (tx, rx) = channel();
        self.inner
            .state
            .borrow_mut()
            .get_mut(&region)
            .ok_or(StoreError::NoSuchRegion(region))?
            .subscribers
            .push(tx);
        Ok(rx)
    }

    /// Joins a *consumer group* in `region` (work-queue / competing-consumer
    /// semantics): each message delivered in the region is taken by exactly
    /// one member of each group, in delivery order. The group springs into
    /// existence on first join; messages delivered before any member joined
    /// queue up for it.
    pub fn join_group(
        &self,
        region: Region,
        group: impl Into<String>,
    ) -> Result<GroupConsumer, StoreError> {
        let group = group.into();
        self.inner
            .state
            .borrow_mut()
            .get_mut(&region)
            .ok_or(StoreError::NoSuchRegion(region))?
            .groups
            .entry(group.clone())
            .or_default();
        Ok(GroupConsumer {
            store: self.clone(),
            region,
            group,
        })
    }

    /// Whether message `id` has been delivered in `region`.
    pub fn is_visible(&self, region: Region, id: u64) -> bool {
        self.inner
            .state
            .borrow()
            .get(&region)
            .map(|s| s.delivered.contains(&id))
            .unwrap_or(false)
    }

    /// Resolves once message `id` is delivered in `region`.
    pub async fn wait_visible(&self, region: Region, id: u64) -> Result<(), StoreError> {
        loop {
            let rx = {
                let mut state = self.inner.state.borrow_mut();
                let rs = state
                    .get_mut(&region)
                    .ok_or(StoreError::NoSuchRegion(region))?;
                if rs.delivered.contains(&id) {
                    return Ok(());
                }
                let (tx, rx) = oneshot();
                rs.waiters.push(Waiter { id, tx });
                rx
            };
            if rx.await.is_ok() {
                return Ok(());
            }
        }
    }

    /// Acknowledges message `id` in `region`: the consumer has finished
    /// processing it (and committed any resulting writes). Work-queue shims
    /// implement `wait` against acks rather than deliveries — a store-
    /// specific visibility semantic (§6.3: `wait` is opaque per store).
    pub fn ack(&self, region: Region, id: u64) -> Result<(), StoreError> {
        let mut state = self.inner.state.borrow_mut();
        let rs = state
            .get_mut(&region)
            .ok_or(StoreError::NoSuchRegion(region))?;
        rs.acked.insert(id);
        let mut i = 0;
        while i < rs.ack_waiters.len() {
            if rs.ack_waiters[i].id == id {
                let w = rs.ack_waiters.swap_remove(i);
                let _ = w.tx.send(());
            } else {
                i += 1;
            }
        }
        drop(state);
        self.inner.emit(VisibilityEvent::QueueAcked {
            store: self.inner.name.clone(),
            region,
            id,
            at: self.inner.sim.now(),
        });
        Ok(())
    }

    /// Whether message `id` has been acknowledged in `region`.
    pub fn is_acked(&self, region: Region, id: u64) -> bool {
        self.inner
            .state
            .borrow()
            .get(&region)
            .map(|s| s.acked.contains(&id))
            .unwrap_or(false)
    }

    /// Resolves once message `id` is acknowledged in `region`.
    pub async fn wait_acked(&self, region: Region, id: u64) -> Result<(), StoreError> {
        loop {
            let rx = {
                let mut state = self.inner.state.borrow_mut();
                let rs = state
                    .get_mut(&region)
                    .ok_or(StoreError::NoSuchRegion(region))?;
                if rs.acked.contains(&id) {
                    return Ok(());
                }
                let (tx, rx) = oneshot();
                rs.ack_waiters.push(Waiter { id, tx });
                rx
            };
            if rx.await.is_ok() {
                return Ok(());
            }
        }
    }

    /// Fault injection: hold deliveries to `region` until resumed. Thin
    /// wrapper over the simulation's [`FaultPlan`].
    pub fn pause_delivery(&self, region: Region) {
        self.inner
            .faults
            .pause_queue_delivery(&self.inner.name, region);
    }

    /// Ends a [`QueueStore::pause_delivery`] stall.
    pub fn resume_delivery(&self, region: Region) {
        self.inner
            .faults
            .resume_queue_delivery(&self.inner.name, region);
    }

    /// Fault injection: probability each delivery attempt is dropped
    /// (dropped attempts are redelivered after the redelivery interval).
    /// Thin wrapper over the [`FaultPlan`].
    pub fn set_delivery_drop_probability(&self, p: f64) {
        self.inner.faults.set_delivery_drop(&self.inner.name, p);
    }

    /// Sets the backoff before a dropped delivery attempt is retried.
    pub fn set_redelivery_interval(&self, d: Dist) {
        *self.inner.redelivery.borrow_mut() = d;
    }

    /// Enables (or disables, with `None`) the consumer-group visibility
    /// timeout: a message taken by a group member but not acknowledged
    /// within `t` is redelivered to the group, so a crashed consumer cannot
    /// strand it. Mirrors SQS-style at-least-once work queues.
    pub fn set_visibility_timeout(&self, t: Option<Duration>) {
        self.inner.visibility_timeout.set(t);
    }

    /// Hands a message back to a group: a live waiter gets it immediately,
    /// otherwise it queues as pending.
    fn requeue_for_group(&self, region: Region, group: &str, msg: QueueMessage) {
        let mut state = self.inner.state.borrow_mut();
        let Some(gs) = state
            .get_mut(&region)
            .and_then(|rs| rs.groups.get_mut(group))
        else {
            return;
        };
        hand_to_group(gs, msg);
    }
}

/// Hands `msg` to the first live waiter of a group, or queues it as pending.
fn hand_to_group(group: &mut GroupState, msg: QueueMessage) {
    let mut undelivered = Some(msg);
    while let Some(m) = undelivered.take() {
        match group.waiters.pop_front() {
            Some(tx) => {
                if let Err(back) = tx.send(m) {
                    undelivered = Some(back); // dead waiter, try next
                }
            }
            None => {
                group.pending.push_back(m);
            }
        }
    }
}

/// A member of a consumer group; see [`QueueStore::join_group`].
#[derive(Clone)]
pub struct GroupConsumer {
    store: QueueStore,
    region: Region,
    group: String,
}

impl GroupConsumer {
    /// Takes the next message destined for this group (exactly-once within
    /// the group, at-least-once when a visibility timeout is set). Waits if
    /// none is pending.
    pub async fn take(&self) -> QueueMessage {
        loop {
            let rx = {
                let mut state = self.store.inner.state.borrow_mut();
                // The region was validated and the group created at join
                // time; regions and groups are never removed, so re-creating
                // the group entry on a miss is a deterministic no-op.
                let gs = state
                    .entry(self.region)
                    .or_default()
                    .groups
                    .entry(self.group.clone())
                    .or_default();
                if let Some(m) = gs.pending.pop_front() {
                    drop(state);
                    self.arm_redelivery(&m);
                    return m;
                }
                let (tx, rx) = oneshot();
                gs.waiters.push_back(tx);
                rx
            };
            if let Ok(m) = rx.await {
                self.arm_redelivery(&m);
                return m;
            }
        }
    }

    /// Non-blocking take.
    pub fn try_take(&self) -> Option<QueueMessage> {
        let m = {
            let mut state = self.store.inner.state.borrow_mut();
            state
                .get_mut(&self.region)?
                .groups
                .get_mut(&self.group)?
                .pending
                .pop_front()?
        };
        self.arm_redelivery(&m);
        Some(m)
    }

    /// If a visibility timeout is configured, schedule the message for
    /// redelivery to this group unless it gets acked in time.
    fn arm_redelivery(&self, msg: &QueueMessage) {
        let Some(timeout) = self.store.inner.visibility_timeout.get() else {
            return;
        };
        let store = self.store.clone();
        let region = self.region;
        let group = self.group.clone();
        let msg = msg.clone();
        let sim = store.inner.sim.clone();
        sim.spawn(async move {
            store.inner.sim.sleep(timeout).await;
            // If the broker is down (crash-restart window) when the timer
            // fires, hold the redelivery decision until it restarts: the
            // restarted broker reads the *current* ack state. Deciding
            // mid-outage would redeliver a message whose ack raced the
            // crash — a duplicate delivery the group already processed.
            {
                let faults = store.inner.faults.clone();
                let q = store.clone();
                faults
                    .until_clear(&store.inner.sim, move |at| {
                        q.inner.faults.queue_down(at, &q.inner.name)
                    })
                    .await;
            }
            if !store.is_acked(region, msg.id) {
                store.requeue_for_group(region, &group, msg);
            }
        });
    }

    /// Acknowledges a taken message (work-queue wait semantics).
    pub fn ack(&self, msg: &QueueMessage) -> Result<(), StoreError> {
        self.store.ack(self.region, msg.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::{EU, US};
    use std::time::Duration;

    fn setup() -> (Sim, QueueStore) {
        let sim = Sim::new(3);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(
            &sim,
            net,
            "sns",
            &[EU, US],
            QueueProfile {
                local_publish: Dist::constant_ms(1.0),
                delivery: Dist::constant_ms(80.0),
                local_delivery: Dist::constant_ms(2.0),
                rtt_hops: 1.0,
            },
        );
        (sim, q)
    }

    #[test]
    fn publish_delivers_to_remote_subscriber() {
        let (sim, q) = setup();
        let q2 = q.clone();
        let msg = sim.block_on(async move {
            let mut sub = q2.subscribe(US).unwrap();
            q2.publish(EU, Bytes::from_static(b"notif")).await.unwrap();
            sub.recv().await.unwrap()
        });
        assert_eq!(msg.payload, Bytes::from_static(b"notif"));
        // One-way EU→US ≈ 45ms + 80ms extra.
        assert!(sim.now().since(SimTime::ZERO) >= Duration::from_millis(100));
    }

    #[test]
    fn local_subscriber_gets_message_quickly() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let mut sub = q2.subscribe(EU).unwrap();
            q2.publish(EU, Bytes::from_static(b"x")).await.unwrap();
            sub.recv().await.unwrap();
        });
        assert!(sim.now().since(SimTime::ZERO) < Duration::from_millis(20));
    }

    #[test]
    fn message_ids_are_unique() {
        let (sim, q) = setup();
        let q2 = q.clone();
        let (a, b) = sim.block_on(async move {
            let a = q2.publish(EU, Bytes::new()).await.unwrap();
            let b = q2.publish(EU, Bytes::new()).await.unwrap();
            (a, b)
        });
        assert_ne!(a, b);
    }

    #[test]
    fn wait_visible_subscribes_to_delivery() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let id = q2.publish(EU, Bytes::from_static(b"n")).await.unwrap();
            assert!(!q2.is_visible(US, id));
            q2.wait_visible(US, id).await.unwrap();
            assert!(q2.is_visible(US, id));
        });
    }

    #[test]
    fn multiple_subscribers_all_receive() {
        let (sim, q) = setup();
        let q2 = q.clone();
        let n = sim.block_on(async move {
            let mut s1 = q2.subscribe(US).unwrap();
            let mut s2 = q2.subscribe(US).unwrap();
            q2.publish(EU, Bytes::from_static(b"b")).await.unwrap();
            let a = s1.recv().await.unwrap();
            let b = s2.recv().await.unwrap();
            assert_eq!(a, b);
            2
        });
        assert_eq!(n, 2);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let sub = q2.subscribe(US).unwrap();
            drop(sub);
            // Publishing must not fail or leak; the dead subscriber is pruned.
            let id = q2.publish(EU, Bytes::new()).await.unwrap();
            q2.wait_visible(US, id).await.unwrap();
        });
    }

    #[test]
    fn unknown_region_errors() {
        let (sim, q) = setup();
        let q2 = q.clone();
        sim.block_on(async move {
            let bogus = Region("nowhere");
            assert!(q2.publish(bogus, Bytes::new()).await.is_err());
            assert!(q2.subscribe(bogus).is_err());
            assert!(q2.wait_visible(bogus, 1).await.is_err());
        });
    }

    #[test]
    fn paused_delivery_stalls_until_resume() {
        let (sim, q) = setup();
        q.pause_delivery(US);
        let q2 = q.clone();
        let got: Rc<RefCell<Option<QueueMessage>>> = Rc::new(RefCell::new(None));
        let slot = got.clone();
        sim.spawn(async move {
            let mut sub = q2.subscribe(US).unwrap();
            q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            *slot.borrow_mut() = sub.recv().await;
        });
        sim.run_for(Duration::from_secs(5));
        assert!(got.borrow().is_none());
        q.resume_delivery(US);
        sim.run_for(Duration::from_secs(5));
        assert!(got.borrow().is_some());
    }

    #[test]
    fn group_members_compete_for_messages() {
        let (sim, q) = setup();
        let n = 12usize;
        let taken: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        // Three competing workers in one group.
        for worker in 0..3usize {
            let consumer = q.join_group(US, "workers").unwrap();
            let taken = taken.clone();
            let sim2 = sim.clone();
            sim.spawn(async move {
                loop {
                    let m = consumer.take().await;
                    // Hold the message briefly so work spreads out.
                    sim2.sleep(Duration::from_millis(30)).await;
                    consumer.ack(&m).unwrap();
                    taken.borrow_mut().push((worker, m.id));
                }
            });
        }
        let q2 = q.clone();
        let ids = sim.block_on(async move {
            let mut ids = Vec::new();
            for _ in 0..n {
                ids.push(q2.publish(EU, Bytes::from_static(b"job")).await.unwrap());
            }
            ids
        });
        sim.run();
        let taken = taken.borrow();
        // Exactly once across the whole group…
        let mut got: Vec<u64> = taken.iter().map(|(_, id)| *id).collect();
        got.sort_unstable();
        let mut want = ids;
        want.sort_unstable();
        assert_eq!(got, want);
        // …and the work actually spread over multiple workers.
        let workers: BTreeSet<usize> = taken.iter().map(|(w, _)| *w).collect();
        assert!(workers.len() >= 2, "work went to {workers:?}");
    }

    #[test]
    fn groups_are_independent_but_subscribers_see_all() {
        let (sim, q) = setup();
        let a = q.join_group(US, "a").unwrap();
        let b = q.join_group(US, "b").unwrap();
        let q2 = q.clone();
        sim.block_on(async move {
            let mut sub = q2.subscribe(US).unwrap();
            let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            // Each group gets its own copy; the pub/sub subscriber too.
            assert_eq!(a.take().await.id, id);
            assert_eq!(b.take().await.id, id);
            assert_eq!(sub.recv().await.unwrap().id, id);
        });
    }

    #[test]
    fn messages_queue_for_slow_groups() {
        let (sim, q) = setup();
        let consumer = q.join_group(US, "g").unwrap();
        let q2 = q.clone();
        sim.block_on(async move {
            let id1 = q2.publish(EU, Bytes::new()).await.unwrap();
            let id2 = q2.publish(EU, Bytes::new()).await.unwrap();
            // Nobody is waiting: both messages pend in order.
            let m1 = consumer.take().await;
            let m2 = consumer.take().await;
            assert_eq!((m1.id, m2.id), (id1, id2));
            assert!(consumer.try_take().is_none());
        });
    }

    #[test]
    fn message_key_format() {
        let m = QueueMessage {
            id: 42,
            payload: Bytes::new(),
            published_at: SimTime::ZERO,
        };
        assert_eq!(m.key(), "msg-42");
    }
}

//! CLI entry point: `cargo run -p antipode-lint [workspace-root]`.
//!
//! Prints every finding with its location and fix hint, then exits with
//! status 1 if any rule fired (so CI can gate on it), 0 on a clean tree.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args_os().nth(1) {
        Some(p) => PathBuf::from(p),
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("antipode-lint: cannot resolve working directory: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "antipode-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    let findings = match antipode_lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("antipode-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("antipode-lint: clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    println!(
        "antipode-lint: {} finding{} — fix or waive with `// lint: allow(<rule>, <reason>)`",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}

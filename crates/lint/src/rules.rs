//! The rule set: what each rule forbids, where it applies, and the fix it
//! suggests. See DESIGN.md § "Analysis plane" for the rationale table.

use crate::lexer;

/// The lint rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: `std::collections::HashMap`/`HashSet` in a deterministic crate.
    /// Their iteration order is seeded per-process, so any order-dependent
    /// behavior breaks the simulator's bit-determinism guarantee.
    NondeterministicMap,
    /// D2: wall-clock or OS-thread nondeterminism (`std::time::Instant`,
    /// `SystemTime`, `thread::spawn`, `thread_rng`) outside `crates/bench`.
    WallClock,
    /// D3: `unwrap()`/`expect()` in fault-path modules — injected faults
    /// must surface as errors, not panics.
    FaultPathUnwrap,
    /// X1: a cross-service write through a shim in app code with no
    /// reachable `barrier`/checkpoint in the same module.
    UncheckedXcyWrite,
    /// X2: a direct shim write in a module that speculates (opens
    /// speculation frontiers) without routing effects through a
    /// `ConfinementBuffer` — a violated speculation could not roll the
    /// write back.
    UnconfinedSpeculativeWrite,
    /// H1: a fresh `Vec` allocation (`Vec::new`, `Vec::with_capacity`,
    /// `vec![…]`, `.to_vec()`) in a hot-path module (`envelope.rs`,
    /// `batch.rs`, `slab.rs`). Envelope and fan-out frames are assembled
    /// per replicated write; a fresh buffer there is exactly the per-hop
    /// allocation the slab exists to remove, and it silently breaks the
    /// `slab_allocated == 0` steady-state claim `BENCH_engine.json` pins.
    HotPathAlloc,
    /// S1: a pop/reorder of a scheduler-adjacent collection (`ready*`,
    /// `runnable*`, `waiter*`, `waker*`, `task*`, `wake*`) outside the
    /// Schedule API (`crates/sim/src/{executor,schedule}.rs`). Which task
    /// runs next must flow through `Schedule::choose` — an ad-hoc pop or
    /// sort is a scheduling decision the model checker cannot enumerate,
    /// reintroducing exactly the unexplored nondeterminism `antipode-mc`
    /// exists to close.
    SchedulerBypass,
    /// W1: a byte-level read of a WAL buffer (`*wal*[…]`, `.iter()`,
    /// `.chunks…`, `.windows(…)`, `.split_at(…)`, `.first()`, `.last()`)
    /// outside the WAL codec module (`crates/datastores/src/wal.rs`).
    /// Every read of logged bytes must flow through the codec's verified
    /// scan (`WalLog::scan` / `scan_frames`), which checks each frame's
    /// CRC and reports the exact failing offset — an ad-hoc byte read
    /// skips exactly the verification the storage-integrity plane exists
    /// to enforce, and would happily rehydrate bit-rotted records.
    UncheckedWalRead,
}

impl Rule {
    /// The waiver slug: `// lint: allow(<slug>, reason)`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NondeterministicMap => "nondeterministic-map",
            Rule::WallClock => "wall-clock",
            Rule::FaultPathUnwrap => "fault-path-unwrap",
            Rule::UncheckedXcyWrite => "unchecked-xcy-write",
            Rule::UnconfinedSpeculativeWrite => "unconfined-speculative-write",
            Rule::HotPathAlloc => "hot-path-vec-alloc",
            Rule::SchedulerBypass => "scheduler-bypass",
            Rule::UncheckedWalRead => "unchecked-wal-read",
        }
    }

    /// All rules, for reporting.
    pub fn all() -> [Rule; 8] {
        [
            Rule::NondeterministicMap,
            Rule::WallClock,
            Rule::FaultPathUnwrap,
            Rule::UncheckedXcyWrite,
            Rule::UnconfinedSpeculativeWrite,
            Rule::HotPathAlloc,
            Rule::SchedulerBypass,
            Rule::UncheckedWalRead,
        ]
    }
}

/// One reported violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    fix: {}",
            self.file,
            self.line,
            self.rule.slug(),
            self.message,
            self.hint
        )
    }
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileContext {
    /// In a crate whose behavior must be bit-deterministic
    /// (`sim`, `datastores`, `core`, `lineage`, `services`).
    pub deterministic: bool,
    /// In `crates/bench` (wall-clock timing is its whole point).
    pub bench: bool,
    /// A fault-path module (`fault.rs`, `replica.rs`, `queue.rs`, `rpc.rs`,
    /// `engine.rs`, `substrate.rs`, `recovery.rs`, `repair.rs`,
    /// `speculation.rs`, `batch.rs`, `slab.rs`).
    pub fault_path: bool,
    /// A per-write hot-path module (`envelope.rs`, `batch.rs`, `slab.rs`)
    /// — subject to H1's no-fresh-`Vec` discipline.
    pub hot_path: bool,
    /// Application code (`crates/apps`) — subject to X1.
    pub app: bool,
    /// The Schedule API's home (`crates/sim/src/{executor,schedule}.rs`) —
    /// the one place allowed to pop ready queues and order runnable sets,
    /// so S1 does not apply.
    pub scheduler_api: bool,
    /// The WAL codec's home (`crates/datastores/src/wal.rs`) — the one
    /// place allowed to touch raw framed log bytes, so W1 does not apply.
    pub wal_codec: bool,
    /// A test/example file: determinism rules do not apply.
    pub test_file: bool,
}

impl FileContext {
    /// Classifies a workspace-relative path.
    pub fn classify(rel: &str) -> FileContext {
        let norm = rel.replace('\\', "/");
        let comps: Vec<&str> = norm.split('/').collect();
        let crate_name = (comps.first() == Some(&"crates"))
            .then(|| comps.get(1).copied())
            .flatten();
        FileContext {
            deterministic: matches!(
                crate_name,
                Some("sim" | "datastores" | "core" | "lineage" | "services")
            ),
            bench: crate_name == Some("bench"),
            fault_path: matches!(
                comps.last().copied(),
                Some(
                    "fault.rs"
                        | "replica.rs"
                        | "queue.rs"
                        | "rpc.rs"
                        | "engine.rs"
                        | "substrate.rs"
                        | "recovery.rs"
                        | "repair.rs"
                        | "speculation.rs"
                        | "batch.rs"
                        | "slab.rs"
                )
            ),
            hot_path: matches!(
                comps.last().copied(),
                Some("envelope.rs" | "batch.rs" | "slab.rs")
            ),
            app: crate_name == Some("apps"),
            scheduler_api: crate_name == Some("sim")
                && matches!(comps.last().copied(), Some("executor.rs" | "schedule.rs")),
            wal_codec: crate_name == Some("datastores") && comps.last().copied() == Some("wal.rs"),
            test_file: comps
                .iter()
                .any(|c| matches!(*c, "tests" | "examples" | "benches")),
        }
    }
}

const D2_IDENTS: [&str; 3] = ["Instant", "SystemTime", "thread_rng"];
const X1_CALLS: [&str; 2] = [".write(", ".publish("];
const X1_CHECKPOINTS: [&str; 4] = ["barrier", "checkpoint", "wait_visible", "wait_acked"];
const X2_SPECULATION: [&str; 4] = [
    "barrier_speculative",
    "SpeculationFrontier",
    "open_frontier",
    "Speculator",
];
const X2_CONFINEMENT: [&str; 3] = ["ConfinementBuffer", "confine_write", "confine_publish"];
const S1_MUTATIONS: [&str; 8] = [
    ".pop_front(",
    ".pop_back(",
    ".pop(",
    ".swap_remove(",
    ".sort(",
    ".sort_by",
    ".sort_unstable",
    ".shuffle(",
];
const S1_COLLECTIONS: [&str; 6] = ["ready", "runnable", "waiter", "waker", "wake", "task"];
const W1_READS: [&str; 8] = [
    "[",
    ".iter(",
    ".chunks",
    ".windows(",
    ".split_at(",
    ".first(",
    ".last(",
    ".as_bytes(",
];

/// The receiver of the first scheduler-collection mutation on a line:
/// `state.waiters.swap_remove(i)` → `("waiters", ".swap_remove(")`.
fn scheduler_mutation(code: &str) -> Option<(String, &'static str)> {
    let mut best: Option<(usize, String, &'static str)> = None;
    for pat in S1_MUTATIONS {
        for (at, _) in code.match_indices(pat) {
            let recv: String = code[..at]
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let lower = recv.to_ascii_lowercase();
            if S1_COLLECTIONS.iter().any(|k| lower.contains(k))
                && best.as_ref().is_none_or(|(a, _, _)| at < *a)
            {
                best = Some((at, recv, pat));
            }
        }
    }
    best.map(|(_, recv, pat)| (recv, pat))
}

/// The first byte-level read whose receiver path names a WAL buffer:
/// `state.wal.as_bytes().first()` → `("state.wal.as_bytes()", ".first(")`.
/// The receiver capture walks whole field paths (dots included) so
/// `self.wal.bytes[off]` is caught, while WAL-adjacent bookkeeping
/// (`wal_index`, `wal_len`) stays out of scope — those hold offsets and
/// counts, not framed bytes needing verification.
fn wal_byte_read(code: &str) -> Option<(String, &'static str)> {
    let mut best: Option<(usize, String, &'static str)> = None;
    for pat in W1_READS {
        for (at, _) in code.match_indices(pat) {
            let recv: String = code[..at]
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let recv = recv.trim_matches('.').to_string();
            let named_wal = recv
                .to_ascii_lowercase()
                .split('.')
                .any(|seg| seg.contains("wal") && !seg.contains("index") && !seg.contains("len"));
            if named_wal && best.as_ref().is_none_or(|(a, _, _)| at < *a) {
                best = Some((at, recv, pat));
            }
        }
    }
    best.map(|(_, recv, pat)| (recv, pat))
}

/// The `shim`-named receivers of `.write(`/`.publish(` calls on a line.
fn shim_receivers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for pat in X1_CALLS {
        for (at, _) in code.match_indices(pat) {
            let recv: String = code[..at]
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            if recv.to_ascii_lowercase().contains("shim") {
                out.push(recv);
            }
        }
    }
    out
}

/// Lints one file's source under the given context.
pub fn lint_source(file: &str, source: &str, ctx: &FileContext) -> Vec<Finding> {
    let lines = lexer::split_lines(source);
    let waived = lexer::waivers(&lines);
    let in_test = lexer::test_lines(&lines);

    // X1 reachability, approximated at module granularity: the app
    // definitions are single-file, so a write is considered checked when
    // any enforcement token appears in the same file.
    let has_checkpoint = ctx.app
        && lines.iter().any(|l| {
            lexer::idents(&l.code)
                .iter()
                .any(|id| X1_CHECKPOINTS.iter().any(|c| id.contains(c)))
        });

    // X2 reachability, same module granularity: a module that opens
    // speculation frontiers must route its shim effects through a
    // confinement buffer, else a violated speculation cannot roll them
    // back.
    let speculates = (ctx.app || ctx.deterministic)
        && lines.iter().any(|l| {
            lexer::idents(&l.code)
                .iter()
                .any(|id| X2_SPECULATION.contains(id))
        });
    let has_confinement = lines.iter().any(|l| {
        lexer::idents(&l.code)
            .iter()
            .any(|id| X2_CONFINEMENT.contains(id))
    });

    let mut findings = Vec::new();
    let mut push = |rule: Rule, line_idx: usize, message: String, hint: &str| {
        if !waived[line_idx].contains(rule.slug()) {
            findings.push(Finding {
                rule,
                file: file.to_string(),
                line: line_idx + 1,
                message,
                hint: hint.to_string(),
            });
        }
    };

    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let test_ctx = ctx.test_file || in_test[idx];

        if !test_ctx {
            if ctx.deterministic {
                if let Some(tok) = lexer::idents(code)
                    .iter()
                    .find(|id| **id == "HashMap" || **id == "HashSet")
                {
                    push(
                        Rule::NondeterministicMap,
                        idx,
                        format!("`{tok}` in a deterministic crate — iteration order is seeded per-process and leaks into simulation state"),
                        "use BTreeMap/BTreeSet or a sorted Vec; if the map is \
                         never iterated, waive with `// lint: allow(nondeterministic-map, <why>)`",
                    );
                }
            }
            if !ctx.bench {
                let ident_hit = lexer::idents(code)
                    .iter()
                    .find(|id| D2_IDENTS.contains(&**id))
                    .map(|s| s.to_string());
                let hit = ident_hit.or_else(|| {
                    code.contains("thread::spawn")
                        .then(|| "thread::spawn".to_string())
                });
                if let Some(tok) = hit {
                    push(
                        Rule::WallClock,
                        idx,
                        format!("`{tok}` outside crates/bench — wall-clock time and OS threads are invisible to the deterministic scheduler"),
                        "use Sim::now()/Sim::spawn and the sim's named RNG \
                         streams; real time belongs only in the bench crate",
                    );
                }
            }
            if ctx.hot_path {
                let hit = ["Vec::new", "Vec::with_capacity", "vec!"]
                    .iter()
                    .find(|p| code.contains(**p))
                    .map(|s| s.to_string())
                    .or_else(|| code.contains(".to_vec()").then(|| ".to_vec()".to_string()));
                if let Some(tok) = hit {
                    push(
                        Rule::HotPathAlloc,
                        idx,
                        format!("`{tok}` in a hot-path module — a fresh Vec per envelope/fan-out frame is the per-write allocation the slab removes"),
                        "assemble the frame in a slab scratch bracket \
                         (`slab::take(cap)` … `slab::give(buf)`); if this is \
                         genuinely cold setup or the pool's own miss path, \
                         waive with `// lint: allow(hot-path-vec-alloc, <why>)`",
                    );
                }
            }
            if ctx.deterministic && !ctx.scheduler_api {
                if let Some((recv, op)) = scheduler_mutation(code) {
                    push(
                        Rule::SchedulerBypass,
                        idx,
                        format!("`{recv}{}` pops/reorders a scheduler-adjacent collection outside the Schedule API — a task-ordering decision the model checker cannot enumerate", op.trim_end_matches('(')),
                        "route run-next decisions through the executor's \
                         Schedule choice points (Sim::set_schedule); if this \
                         collection holds store waiters or permits rather \
                         than runnable tasks, waive with \
                         `// lint: allow(scheduler-bypass, <why>)`",
                    );
                }
            }
            if ctx.deterministic && !ctx.wal_codec {
                if let Some((recv, op)) = wal_byte_read(code) {
                    push(
                        Rule::UncheckedWalRead,
                        idx,
                        format!("`{recv}{}` reads raw WAL bytes outside the codec — an ad-hoc byte read skips the per-frame CRC verification the integrity plane depends on", op.trim_end_matches('(')),
                        "decode through the verified scan \
                         (`WalLog::scan(true)` / `wal::scan_frames`), which \
                         checks every frame's checksum and reports the exact \
                         failing offset; if this buffer is not framed log \
                         bytes, waive with `// lint: allow(unchecked-wal-read, <why>)`",
                    );
                }
            }
            if ctx.fault_path {
                let hit = if code.contains(".unwrap()") {
                    Some("unwrap()")
                } else if code.contains(".expect(") {
                    Some("expect(…)")
                } else {
                    None
                };
                if let Some(tok) = hit {
                    push(
                        Rule::FaultPathUnwrap,
                        idx,
                        format!("`{tok}` in a fault-path module — injected faults must surface as errors, not panics"),
                        "propagate with `?` or match on the error; fault-path \
                         modules are exercised by the chaos plane",
                    );
                }
            }
        }

        if ctx.app && !test_ctx && !has_checkpoint {
            for recv in shim_receivers(code) {
                push(
                    Rule::UncheckedXcyWrite,
                    idx,
                    format!("cross-service write through `{recv}` with no barrier/checkpoint reachable in this module"),
                    "call `Antipode::barrier(&lineage, region)` (or a \
                     `ConsistencyChecker::checkpoint`) on the consumer \
                     side before dependent reads",
                );
            }
        }

        if speculates && !has_confinement && !test_ctx {
            for recv in shim_receivers(code) {
                push(
                    Rule::UnconfinedSpeculativeWrite,
                    idx,
                    format!("direct write through `{recv}` in a module that speculates — a violated speculation cannot roll it back"),
                    "park the effect in a `ConfinementBuffer` \
                     (confine_write/confine_publish) and let the speculator \
                     commit it on confirmation or discard it on violation",
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> FileContext {
        FileContext {
            deterministic: true,
            ..Default::default()
        }
    }

    #[test]
    fn classify_paths() {
        let c = FileContext::classify("crates/sim/src/net.rs");
        assert!(c.deterministic && !c.bench && !c.app && !c.test_file);
        let c = FileContext::classify("crates/bench/src/perf.rs");
        assert!(c.bench && !c.deterministic);
        let c = FileContext::classify("crates/datastores/src/queue.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/datastores/src/recovery.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/datastores/src/repair.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/datastores/src/engine.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/datastores/src/substrate.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/datastores/src/batch.rs");
        assert!(c.deterministic && c.fault_path && c.hot_path);
        let c = FileContext::classify("crates/datastores/src/slab.rs");
        assert!(c.deterministic && c.fault_path && c.hot_path);
        let c = FileContext::classify("crates/datastores/src/envelope.rs");
        assert!(c.deterministic && c.hot_path && !c.fault_path);
        let c = FileContext::classify("crates/apps/src/social.rs");
        assert!(c.app && !c.hot_path);
        let c = FileContext::classify("crates/core/src/speculation.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/datastores/src/speculation.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/services/src/speculation.rs");
        assert!(c.deterministic && c.fault_path);
        let c = FileContext::classify("crates/datastores/src/wal.rs");
        assert!(c.deterministic && c.wal_codec && !c.test_file);
        let c = FileContext::classify("crates/datastores/src/engine.rs");
        assert!(!c.wal_codec);
        let c = FileContext::classify("crates/sim/src/executor.rs");
        assert!(c.deterministic && c.scheduler_api);
        let c = FileContext::classify("crates/sim/src/schedule.rs");
        assert!(c.deterministic && c.scheduler_api);
        let c = FileContext::classify("crates/sim/src/sync.rs");
        assert!(c.deterministic && !c.scheduler_api);
        let c = FileContext::classify("crates/datastores/src/engine.rs");
        assert!(!c.scheduler_api);
        let c = FileContext::classify("tests/chaos_properties.rs");
        assert!(c.test_file);
        let c = FileContext::classify("crates/sim/tests/determinism.rs");
        assert!(c.test_file && c.deterministic);
    }

    #[test]
    fn d1_ignores_strings_comments_and_tests() {
        let src = "\
// a HashMap in a comment
let s = \"HashMap\";
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
}
";
        assert!(lint_source("f.rs", src, &det()).is_empty());
    }

    #[test]
    fn d1_fires_on_real_use() {
        let f = lint_source("f.rs", "use std::collections::HashSet;\n", &det());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::NondeterministicMap);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d2_distinguishes_sim_spawn_from_thread_spawn() {
        let ctx = FileContext::default();
        assert!(lint_source("f.rs", "sim.spawn(async {});\n", &ctx).is_empty());
        let f = lint_source("f.rs", "std::thread::spawn(|| {});\n", &ctx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
    }

    #[test]
    fn x1_checked_module_is_clean() {
        let ctx = FileContext {
            app: true,
            ..Default::default()
        };
        let racy = "post_shim.write(EU, key, body, lin).await;\n";
        let f = lint_source("f.rs", racy, &ctx);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UncheckedXcyWrite);
        let checked = format!("{racy}ap.barrier(&lin, US).await;\n");
        assert!(lint_source("f.rs", &checked, &ctx).is_empty());
    }

    #[test]
    fn x2_fires_only_in_unconfined_speculating_modules() {
        let ctx = FileContext {
            app: true,
            ..Default::default()
        };
        // A speculating module with a raw shim write (the barrier token
        // also satisfies X1's checkpoint reachability, isolating X2).
        let racy = "ap.barrier_speculative(&lin, US, &cfg).await;\n\
                    feed_shim.write(US, key, body, lin).await;\n";
        let f = lint_source("f.rs", racy, &ctx);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, Rule::UnconfinedSpeculativeWrite);
        assert_eq!(f[0].line, 2);
        // Same module routed through a confinement buffer: clean.
        let confined = "ap.barrier_speculative(&lin, US, &cfg).await;\n\
                        buf.confine_write(&feed_shim, US, key, body);\n";
        assert!(lint_source("f.rs", confined, &ctx).is_empty());
        // A non-speculating module with the same write only concerns X1.
        let plain = "ap.barrier(&lin, US).await;\nfeed_shim.write(US, key, body, lin).await;\n";
        assert!(lint_source("f.rs", plain, &ctx).is_empty());
    }

    #[test]
    fn x2_applies_to_deterministic_service_code_too() {
        let f = lint_source(
            "f.rs",
            "let s = Speculator::new(ap, policy);\nnotif_shim.publish(US, payload, lin).await;\n",
            &det(),
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, Rule::UnconfinedSpeculativeWrite);
    }

    #[test]
    fn h1_fires_on_hot_path_vec_allocation() {
        let ctx = FileContext {
            deterministic: true,
            hot_path: true,
            ..Default::default()
        };
        for src in [
            "let mut buf = Vec::with_capacity(64);\n",
            "let mut buf = Vec::new();\n",
            "let frame = vec![0u8; n];\n",
            "let copy = bytes.to_vec();\n",
        ] {
            let f = lint_source("f.rs", src, &ctx);
            assert_eq!(f.len(), 1, "{src:?}: {f:#?}");
            assert_eq!(f[0].rule, Rule::HotPathAlloc, "{src:?}");
        }
        // Slab brackets and non-hot-path modules are clean.
        assert!(lint_source("f.rs", "let mut buf = slab::take(64);\n", &ctx).is_empty());
        let cold = FileContext {
            deterministic: true,
            ..Default::default()
        };
        assert!(lint_source("f.rs", "let mut buf = Vec::new();\n", &cold).is_empty());
    }

    #[test]
    fn s1_fires_on_scheduler_collection_mutation_outside_the_api() {
        for src in [
            "let next = ready_queue.pop_front();\n",
            "runnable.swap_remove(i);\n",
            "self.tasks.sort_by(|a, b| a.cmp(b));\n",
            "let w = waiters.pop();\n",
        ] {
            let f = lint_source("f.rs", src, &det());
            assert_eq!(f.len(), 1, "{src:?}: {f:#?}");
            assert_eq!(f[0].rule, Rule::SchedulerBypass, "{src:?}");
        }
    }

    #[test]
    fn s1_exempts_the_schedule_api_home_and_plain_collections() {
        let exempt = FileContext {
            deterministic: true,
            scheduler_api: true,
            ..Default::default()
        };
        assert!(lint_source("f.rs", "let next = ready_queue.pop_front();\n", &exempt).is_empty());
        // Collections without a scheduler-ish name are not S1's business.
        assert!(lint_source("f.rs", "let top = stack.pop();\nitems.sort();\n", &det()).is_empty());
        // Outside deterministic crates the rule is off entirely.
        let plain = FileContext::default();
        assert!(lint_source("f.rs", "ready_queue.pop_front();\n", &plain).is_empty());
    }

    #[test]
    fn w1_fires_on_raw_wal_byte_reads_outside_the_codec() {
        for src in [
            "let b = self.wal.bytes[off];\n",
            "for b in wal_bytes.iter() {\n",
            "for frame in wal_buf.chunks(8) {\n",
            "let (head, tail) = wal_slice.split_at(mid);\n",
            "let raw = state.wal.as_bytes();\n",
            "let first = wal.first();\n",
            "let tail = replica_wal.last();\n",
        ] {
            let f = lint_source("f.rs", src, &det());
            assert_eq!(f.len(), 1, "{src:?}: {f:#?}");
            assert_eq!(f[0].rule, Rule::UncheckedWalRead, "{src:?}");
        }
    }

    #[test]
    fn w1_exempts_the_codec_bookkeeping_and_verified_scans() {
        // The codec module itself is the one place allowed to touch bytes.
        let codec = FileContext {
            deterministic: true,
            wal_codec: true,
            ..Default::default()
        };
        assert!(lint_source("f.rs", "let b = self.bytes[at];\n", &codec).is_empty());
        assert!(lint_source("f.rs", "let b = wal_bytes[at];\n", &codec).is_empty());
        // Verified scans, appends, and WAL bookkeeping are the sanctioned
        // surface — none of them read raw bytes.
        for src in [
            "let scan = state.wal.scan(verify);\n",
            "let framed = self.wal.append(&entry);\n",
            "state.wal.rebuild(entries.iter());\n",
            "assert_eq!(store.wal_len(EU), 3);\n",
            "self.wal_index.entry(key);\n",
            "let n = state.wal.len();\n",
            "queue.push(item);\n",
        ] {
            assert!(
                lint_source("f.rs", src, &det()).is_empty(),
                "{src:?} must not fire W1"
            );
        }
        // Non-WAL buffers index freely.
        assert!(lint_source("f.rs", "let b = buf[off];\n", &det()).is_empty());
        // Outside deterministic crates the rule is off entirely.
        let plain = FileContext::default();
        assert!(lint_source("f.rs", "let b = wal_bytes[off];\n", &plain).is_empty());
    }

    #[test]
    fn x1_ignores_non_shim_receivers() {
        let ctx = FileContext {
            app: true,
            ..Default::default()
        };
        assert!(lint_source("f.rs", "file.write(buf);\nqueue.publish(m);\n", &ctx).is_empty());
    }
}

//! # antipode-lint
//!
//! A determinism/XCY static-analysis pass for this workspace, run as a CI
//! gate (`cargo run -p antipode-lint`). The rules:
//!
//! - **D1** `nondeterministic-map` — no `HashMap`/`HashSet` in the
//!   deterministic crates (`sim`, `datastores`, `core`, `lineage`,
//!   `services`): their seeded iteration order leaks into simulation state
//!   and breaks replayability.
//! - **D2** `wall-clock` — no `std::time::Instant`/`SystemTime`,
//!   `thread::spawn`, or `thread_rng` outside `crates/bench`.
//! - **D3** `fault-path-unwrap` — no `unwrap()`/`expect()` in fault-path
//!   modules (`fault.rs`, `replica.rs`, `queue.rs`, `rpc.rs`, the engine
//!   and recovery-plane modules).
//! - **X1** `unchecked-xcy-write` — app code performing a cross-service
//!   shim write with no reachable `barrier`/checkpoint in the module.
//! - **X2** `unconfined-speculative-write` — a direct shim write in a
//!   module that speculates without a `ConfinementBuffer` to roll it back.
//! - **H1** `hot-path-vec-alloc` — a fresh `Vec` in a per-write hot-path
//!   module; frames belong in slab scratch brackets.
//! - **S1** `scheduler-bypass` — a pop/reorder of a scheduler-adjacent
//!   collection outside the Schedule API in `crates/sim`.
//! - **W1** `unchecked-wal-read` — a byte-level read of a WAL buffer
//!   outside the codec (`crates/datastores/src/wal.rs`); logged bytes are
//!   only read through the verified, CRC-checked scan.
//!
//! Violations can be waived in place with
//! `// lint: allow(<rule>, <reason>)` — on the flagged line or in the
//! comment block immediately above it. The scanner is a hand-rolled lexer
//! (no `syn`), so the crate is dependency-free and builds offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, FileContext, Finding, Rule};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never scanned.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "dev", "fixtures", "node_modules"];

/// Scans every `.rs` file under `root` (the workspace checkout) and returns
/// all findings, sorted by file then line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&file)?;
        let ctx = FileContext::classify(&rel);
        findings.extend(lint_source(&rel, &source, &ctx));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&&*name) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

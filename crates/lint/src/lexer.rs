//! A hand-rolled lexical pass over Rust source.
//!
//! The linter's rules are all lexical — "this token must not appear in this
//! kind of file" — so a full parse (and the `syn` dependency it would drag
//! in) is unnecessary. What *is* necessary is not being fooled by trivia: a
//! `HashMap` inside a string literal, a doc comment, or a `#[cfg(test)]`
//! module must not fire a determinism rule. This module strips source down
//! to per-line *code* (strings and comments blanked) and *comment* text
//! (for waivers), and computes which lines belong to test-only spans.
//!
//! Handled: line/doc comments, nested block comments, string/char/byte
//! literals, raw strings (`r#"…"#` with any number of hashes), and the
//! char-literal vs lifetime ambiguity (`'a'` vs `<'a>`).

use std::collections::BTreeSet;

/// One source line after lexing.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Code with every string, char literal, and comment blanked out.
    pub code: String,
    /// The text of any comment that appeared on this line.
    pub comment: String,
}

enum State {
    Normal,
    LineComment,
    /// Nested block comment, with current depth.
    Block(u32),
    Str,
    /// Raw string, closed by `"` followed by this many `#`s.
    RawStr(u32),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits `source` into lexed [`Line`]s.
pub fn split_lines(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Normal;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                let starts_token = !cur.code.chars().next_back().is_some_and(is_ident);
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.code.push(' ');
                    i += 1;
                } else if c == 'b' && next == Some('"') && starts_token {
                    state = State::Str;
                    cur.code.push(' ');
                    i += 2;
                } else if c == 'b' && next == Some('\'') && starts_token {
                    i += 1; // fall through to the char-literal scan below
                    i += skip_char_literal(&chars, i);
                    cur.code.push(' ');
                } else if (c == 'r' || (c == 'b' && next == Some('r'))) && starts_token {
                    let start = if c == 'b' { i + 2 } else { i + 1 };
                    if let Some(hashes) = raw_string_hashes(&chars, start) {
                        state = State::RawStr(hashes);
                        cur.code.push(' ');
                        i = start + hashes as usize + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    let skipped = skip_char_literal(&chars, i);
                    if skipped > 0 {
                        cur.code.push(' ');
                        i += skipped;
                    } else {
                        // A lifetime — keep the tick so tokens stay split.
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i + 1, hashes) {
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// If `chars[at..]` is `#*"` (a raw-string opener), returns the hash count.
fn raw_string_hashes(chars: &[char], at: usize) -> Option<u32> {
    let mut j = at;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw_string(chars: &[char], at: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(at + k) == Some(&'#'))
}

/// If `chars[at..]` is a char literal (`'x'`, `'\n'`, `'\u{1F980}'`),
/// returns its length in chars; `0` means it is a lifetime instead.
fn skip_char_literal(chars: &[char], at: usize) -> usize {
    debug_assert_eq!(chars.get(at), Some(&'\''));
    let mut j = at + 1;
    if chars.get(j) == Some(&'\\') {
        // Escaped: scan (bounded) for the closing quote.
        j += 1;
        for _ in 0..12 {
            match chars.get(j) {
                Some('\'') => return j - at + 1,
                Some(_) => j += 1,
                None => return 0,
            }
        }
        0
    } else if chars.get(at + 2) == Some(&'\'') && chars.get(at + 1) != Some(&'\'') {
        3 // 'x'
    } else {
        0 // lifetime
    }
}

/// The rule waiver marker recognized in comments:
/// `// lint: allow(<rule>, <reason…>)`.
const WAIVER_MARKER: &str = "lint: allow(";

/// Per-line sets of waived rule slugs.
///
/// A waiver on a line with code applies to that line; a waiver in a
/// comment-only line applies to the first following line that has code
/// (so multi-line justification comments above the flagged line work).
pub fn waivers(lines: &[Line]) -> Vec<BTreeSet<String>> {
    let mut out = vec![BTreeSet::new(); lines.len()];
    for (i, line) in lines.iter().enumerate() {
        let Some(at) = line.comment.find(WAIVER_MARKER) else {
            continue;
        };
        let rest = &line.comment[at + WAIVER_MARKER.len()..];
        let rule = rest
            .split([',', ')'])
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        if rule.is_empty() {
            continue;
        }
        let target = if !line.code.trim().is_empty() {
            Some(i)
        } else {
            // Walk to the first code-bearing line below the comment block.
            (i + 1..lines.len()).find(|&j| !lines[j].code.trim().is_empty())
        };
        if let Some(t) = target {
            out[t].insert(rule);
        }
    }
    out
}

/// Marks the lines covered by `#[cfg(test)]` items (test modules and
/// test-gated items), by brace-matching from the attribute.
pub fn test_lines(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut seen_brace = false;
        let mut j = i;
        'span: while j < lines.len() {
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    '}' => {
                        depth -= 1;
                        if seen_brace && depth == 0 {
                            break 'span;
                        }
                    }
                    // A braceless item (e.g. `#[cfg(test)] use …;`).
                    ';' if !seen_brace && depth == 0 => break 'span,
                    _ => {}
                }
            }
            j += 1;
        }
        let end = j.min(lines.len() - 1);
        for flag in &mut in_test[i..=end] {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// Iterates the identifier tokens of a lexed code line.
pub fn idents(code: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = None;
    for (at, c) in code.char_indices() {
        if is_ident(c) {
            start.get_or_insert(at);
        } else if let Some(s) = start.take() {
            out.push(&code[s..at]);
        }
    }
    if let Some(s) = start {
        out.push(&code[s..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = split_lines("let x = \"HashMap\"; // HashMap here\nuse HashMap;\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(lines[1].code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = split_lines("let x = r#\"HashMap \"quoted\" \"#; HashSet\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("HashSet"), "{:?}", lines[0].code);
    }

    #[test]
    fn multiline_and_nested_block_comments() {
        let src = "a /* one\n /* two */ still\n done */ b\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].code.trim(), "a");
        assert_eq!(lines[1].code.trim(), "");
        assert_eq!(lines[2].code.trim(), "b");
        assert!(lines[1].comment.contains("still"));
    }

    #[test]
    fn lifetimes_are_not_strings() {
        let lines = split_lines("fn f<'a>(x: &'a str) -> &'a str { x } HashMap\n");
        assert!(lines[0].code.contains("HashMap"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lines = split_lines("let c = 'x'; let nl = '\\n'; let q = '\\''; HashMap\n");
        assert!(lines[0].code.contains("HashMap"));
        assert!(!lines[0].code.contains('x'));
    }

    #[test]
    fn byte_strings_are_blanked() {
        let lines = split_lines("let b = b\"HashMap\"; let c = b'x'; ok\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("ok"));
    }

    #[test]
    fn waiver_on_same_line_and_above_block() {
        let src = "\
let a = 1; // lint: allow(wall-clock, fixture)
// lint: allow(nondeterministic-map, two-line
// justification comment)
use std::collections::HashMap;
";
        let lines = split_lines(src);
        let w = waivers(&lines);
        assert!(w[0].contains("wall-clock"));
        assert!(w[3].contains("nondeterministic-map"));
        assert!(w[1].is_empty() && w[2].is_empty());
    }

    #[test]
    fn cfg_test_spans_are_marked() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn t() {}
}
fn after() {}
";
        let lines = split_lines(src);
        let t = test_lines(&lines);
        assert_eq!(t, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn ident_tokenizer_splits_paths() {
        assert_eq!(
            idents("std::collections::HashMap::new()"),
            vec!["std", "collections", "HashMap", "new"]
        );
    }
}

//! D3 fixture for the speculation modules: one `expect(…)` on a
//! confirmation fault path — fires exactly once under the real classified
//! context of each `speculation.rs`.

pub fn confirmation_report(report: Option<BarrierReport>) -> BarrierReport {
    report.expect("frontier resolved with a report")
}

//! D1 fixture: one `HashMap` in a deterministic crate — fires exactly once.
//! A `HashSet` in this doc comment and a "HashMap" in the string below must
//! not fire.

pub fn build() -> std::collections::HashMap<String, u64> {
    let _doc = "a HashMap in a string is fine";
    Default::default()
}

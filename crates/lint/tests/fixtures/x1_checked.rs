//! X1 fixture: the same shim write, but the module also reaches a barrier
//! on the consumer side — no finding.

pub async fn create_post(post_shim: &KvShim, lin: &mut Lineage) {
    post_shim.write(EU, "post-1", body(), lin).await.ok();
}

pub async fn consume(ap: &Antipode, lin: &Lineage) {
    ap.barrier(lin, US).await.ok();
}

//! D3 fixture: an `unwrap()` inside a substrate-engine fault/recovery path —
//! the exact shape the rule must keep catching now that the replication
//! engine (`engine.rs`/`substrate.rs`) owns the fault handling for both
//! store families. Fires exactly once.

pub struct ReplicaState {
    pub epoch: u64,
}

pub fn crash_restart(replicas: &mut std::collections::BTreeMap<u8, ReplicaState>, region: u8) {
    // Recovering a crashed replica: assuming the entry exists is precisely
    // the bug D3 exists to flag — a fault window can race replica teardown.
    let state = replicas.get_mut(&region).unwrap();
    state.epoch += 1;
}

//! X2 fixture: the same speculating module with its effects parked in a
//! `ConfinementBuffer` — clean.

pub async fn render_feed(ap: &Antipode, feed_shim: &KvShim, lin: &mut Lineage) {
    let out = ap.barrier_speculative(lin, US, &cfg()).await;
    let mut buf = ConfinementBuffer::new();
    buf.confine_write(feed_shim, US, "feed-1", body());
    drop((out, buf));
}

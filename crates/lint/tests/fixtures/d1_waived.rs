//! D1 fixture: the same `HashMap`, waived by the comment block above it.

// lint: allow(nondeterministic-map, fixture — the map is a lookup-only
// index that is never iterated)
pub fn build() -> std::collections::HashMap<String, u64> {
    Default::default()
}

//! D2 fixture: one wall-clock read outside crates/bench — fires exactly once.

pub fn stamp() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}

//! D3 fixture: the same `unwrap()`, waived by the comment above it.

pub fn deliver(slot: Option<u32>) -> u32 {
    // lint: allow(fault-path-unwrap, fixture — slot is populated by the
    // caller on this path)
    slot.unwrap()
}

//! D3 fixture: one `unwrap()` in a fault-path module — fires exactly once.
//! The test module's unwrap below must not fire.

pub fn deliver(slot: Option<u32>) -> u32 {
    slot.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}

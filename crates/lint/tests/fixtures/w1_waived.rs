//! W1 waived twin: the same read, justified — the buffer is a network
//! frame that merely mentions the WAL in its name, not framed log bytes.

pub fn peek_header(wal_ack_frame: &[u8]) -> u8 {
    // lint: allow(unchecked-wal-read, this is a replication ack frame —
    // the WAL itself is only ever decoded through the verified scan)
    wal_ack_frame[0]
}

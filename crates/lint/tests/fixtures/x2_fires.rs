//! X2 fixture: a speculating module with a raw shim write — fires exactly
//! once. The `barrier_speculative` call also satisfies X1's checkpoint
//! reachability, so the one finding is X2's; the test-module write below
//! must not fire.

pub async fn render_feed(ap: &Antipode, feed_shim: &KvShim, lin: &mut Lineage) {
    let out = ap.barrier_speculative(lin, US, &cfg()).await;
    feed_shim.write(US, "feed-1", body(), lin).await.ok();
    drop(out);
}

#[cfg(test)]
mod tests {
    pub async fn write_in_test(feed_shim: &KvShim, lin: &mut Lineage) {
        feed_shim.write(US, "feed-test", body(), lin).await.ok();
    }
}

//! X1 fixture: a shim write with no barrier/checkpoint anywhere in the
//! module — fires exactly once. The non-shim `file.write` must not fire.

pub async fn create_post(post_shim: &KvShim, lin: &mut Lineage) {
    post_shim.write(EU, "post-1", body(), lin).await.ok();
    let mut file = sink();
    file.write(b"audit").ok();
}

//! X2 fixture: the same unconfined speculative write, waived in place.

pub async fn render_feed(ap: &Antipode, feed_shim: &KvShim, lin: &mut Lineage) {
    let out = ap.barrier_speculative(lin, US, &cfg()).await;
    // lint: allow(unconfined-speculative-write, fixture — this effect is
    // idempotent and safe to re-apply after a rollback)
    feed_shim.write(US, "feed-1", body(), lin).await.ok();
    drop(out);
}

//! X1 fixture: the same shim write, waived in place.

pub async fn create_post(post_shim: &KvShim, lin: &mut Lineage) {
    // lint: allow(unchecked-xcy-write, fixture — enforcement happens in a
    // sibling module)
    post_shim.write(EU, "post-1", body(), lin).await.ok();
}

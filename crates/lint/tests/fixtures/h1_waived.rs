//! H1 waived twin: the same allocation, justified — plus the clean slab
//! bracket the rule steers toward.

pub fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    // lint: allow(hot-path-vec-alloc, cold one-shot setup fixture — not a
    // per-write frame)
    let mut frame = Vec::with_capacity(payload.len() + 16);
    frame.extend_from_slice(payload);
    frame
}

pub fn encode_envelope_pooled(payload: &[u8]) -> usize {
    let mut frame = slab::take(payload.len() + 16);
    frame.extend_from_slice(payload);
    let n = frame.len();
    slab::give(frame);
    n
}

//! H1 fixture: a fresh Vec allocated per envelope in a hot-path module.

pub fn encode_envelope(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(payload.len() + 16);
    frame.extend_from_slice(payload);
    frame
}

#[cfg(test)]
mod tests {
    // Test code may allocate freely.
    pub fn scratch() -> Vec<u8> {
        vec![0u8; 64]
    }
}

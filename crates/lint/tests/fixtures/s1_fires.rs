//! S1 fixture: an ad-hoc ready-queue pop outside the Schedule API — a
//! task-ordering decision the model checker cannot enumerate.

pub fn run_next(ready_tasks: &mut Vec<u64>) -> Option<u64> {
    ready_tasks.pop()
}

#[cfg(test)]
mod tests {
    // Test code may juggle its own queues.
    pub fn drain(ready_tasks: &mut Vec<u64>) {
        while ready_tasks.pop().is_some() {}
    }
}

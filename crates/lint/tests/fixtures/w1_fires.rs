//! W1 fixture: an ad-hoc byte read of a WAL buffer outside the codec —
//! replaying frames by hand skips the per-frame CRC verification the
//! storage-integrity plane depends on.

pub fn replay_by_hand(wal_bytes: &[u8]) -> u8 {
    wal_bytes[8]
}

#[cfg(test)]
mod tests {
    // Test code may poke raw log bytes to stage corruption.
    pub fn stage_flip(wal_bytes: &mut [u8]) {
        wal_bytes[3] ^= 1;
    }
}

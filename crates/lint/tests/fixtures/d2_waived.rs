//! D2 fixture: the same wall-clock read, waived on the flagged line.

pub fn stamp() -> std::time::Duration {
    let start = std::time::Instant::now(); // lint: allow(wall-clock, fixture)
    start.elapsed()
}

//! S1 waived twin: the same mutation, justified — the collection holds
//! store visibility waiters (bookkeeping), not runnable tasks.

pub struct Waiter(u64);

pub fn complete_waiter(waiters: &mut Vec<Waiter>, i: usize) -> Waiter {
    // lint: allow(scheduler-bypass, visibility waiters are store bookkeeping —
    // the woken future still runs only when the executor's Schedule picks it)
    waiters.swap_remove(i)
}

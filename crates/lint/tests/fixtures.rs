//! Fixture corpus: every rule must fire exactly once on its `*_fires.rs`
//! fixture, be silent on its `*_waived.rs` twin, and the workspace itself
//! must be clean.

use std::fs;
use std::path::Path;

use antipode_lint::{lint_source, FileContext, Finding, Rule};

fn lint_fixture(name: &str, ctx: FileContext) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(name, &source, &ctx)
}

fn det() -> FileContext {
    FileContext {
        deterministic: true,
        ..Default::default()
    }
}

fn fault() -> FileContext {
    FileContext {
        deterministic: true,
        fault_path: true,
        ..Default::default()
    }
}

fn app() -> FileContext {
    FileContext {
        app: true,
        ..Default::default()
    }
}

fn hot() -> FileContext {
    FileContext {
        deterministic: true,
        hot_path: true,
        ..Default::default()
    }
}

#[test]
fn every_rule_fires_exactly_once_on_its_fixture() {
    for (fixture, ctx, rule) in [
        ("d1_fires.rs", det(), Rule::NondeterministicMap),
        ("d2_fires.rs", FileContext::default(), Rule::WallClock),
        ("d3_fires.rs", fault(), Rule::FaultPathUnwrap),
        ("x1_fires.rs", app(), Rule::UncheckedXcyWrite),
        ("x2_fires.rs", app(), Rule::UnconfinedSpeculativeWrite),
        ("h1_fires.rs", hot(), Rule::HotPathAlloc),
        ("s1_fires.rs", det(), Rule::SchedulerBypass),
        ("w1_fires.rs", det(), Rule::UncheckedWalRead),
    ] {
        let findings = lint_fixture(fixture, ctx);
        assert_eq!(
            findings.len(),
            1,
            "{fixture}: expected exactly one finding, got {findings:#?}"
        );
        assert_eq!(findings[0].rule, rule, "{fixture}");
        assert!(findings[0].line > 0, "{fixture}: line must be 1-based");
        assert!(!findings[0].hint.is_empty(), "{fixture}: hint required");
    }
}

#[test]
fn waivers_suppress_every_rule() {
    for (fixture, ctx) in [
        ("d1_waived.rs", det()),
        ("d2_waived.rs", FileContext::default()),
        ("d3_waived.rs", fault()),
        ("x1_waived.rs", app()),
        ("x2_waived.rs", app()),
        ("h1_waived.rs", hot()),
        ("s1_waived.rs", det()),
        ("w1_waived.rs", det()),
    ] {
        let findings = lint_fixture(fixture, ctx);
        assert!(findings.is_empty(), "{fixture}: {findings:#?}");
    }
}

#[test]
fn module_with_reachable_barrier_is_clean() {
    assert!(lint_fixture("x1_checked.rs", app()).is_empty());
}

#[test]
fn confined_speculating_module_is_clean() {
    assert!(lint_fixture("x2_confined.rs", app()).is_empty());
}

/// Every layer of the speculation plane (`crates/{core,datastores,
/// services}/src/speculation.rs`) sits on the confirmation/rollback fault
/// path, so D3 must fire there under the *real* classified contexts.
#[test]
fn d3_covers_the_speculation_modules() {
    for module in [
        "crates/core/src/speculation.rs",
        "crates/datastores/src/speculation.rs",
        "crates/services/src/speculation.rs",
    ] {
        let ctx = FileContext::classify(module);
        assert!(
            ctx.deterministic && ctx.fault_path && !ctx.test_file,
            "{module} must classify as a deterministic fault-path module"
        );
        let findings = lint_fixture("d3_speculation_fires.rs", ctx);
        assert_eq!(findings.len(), 1, "{module}: {findings:#?}");
        assert_eq!(findings[0].rule, Rule::FaultPathUnwrap, "{module}");
    }
}

/// The substrate engine owns the fault/recovery paths for both store
/// families, so D3 must fire inside `engine.rs`/`substrate.rs` under their
/// *real* classified contexts — not a hand-rolled `FileContext`.
#[test]
fn d3_fires_in_engine_fault_paths() {
    for module in [
        "crates/datastores/src/engine.rs",
        "crates/datastores/src/substrate.rs",
    ] {
        let ctx = FileContext::classify(module);
        assert!(
            ctx.deterministic && ctx.fault_path && !ctx.test_file,
            "{module} must classify as a deterministic fault-path module"
        );
        let findings = lint_fixture("d3_engine_fires.rs", ctx);
        assert_eq!(findings.len(), 1, "{module}: {findings:#?}");
        assert_eq!(findings[0].rule, Rule::FaultPathUnwrap, "{module}");
    }
}

/// The engine hot path's batching and slab modules sit on both the fault
/// path (redelivery/retry phases consult the plan) and the hot path (per-
/// write frames), so D1, D3, and H1 must all fire there under the *real*
/// classified contexts.
#[test]
fn hot_path_modules_get_d1_d3_and_h1_coverage() {
    for module in [
        "crates/datastores/src/batch.rs",
        "crates/datastores/src/slab.rs",
    ] {
        let ctx = FileContext::classify(module);
        assert!(
            ctx.deterministic && ctx.fault_path && ctx.hot_path && !ctx.test_file,
            "{module} must classify as deterministic, fault-path, and hot-path"
        );
        let d1 = lint_fixture("d1_fires.rs", ctx);
        assert_eq!(d1.len(), 1, "{module}: {d1:#?}");
        assert_eq!(d1[0].rule, Rule::NondeterministicMap, "{module}");
        let d3 = lint_fixture("d3_engine_fires.rs", ctx);
        assert_eq!(d3.len(), 1, "{module}: {d3:#?}");
        assert_eq!(d3[0].rule, Rule::FaultPathUnwrap, "{module}");
        let h1 = lint_fixture("h1_fires.rs", ctx);
        assert_eq!(h1.len(), 1, "{module}: {h1:#?}");
        assert_eq!(h1[0].rule, Rule::HotPathAlloc, "{module}");
    }
    // The envelope module is hot-path but not fault-path: H1 applies, D3
    // does not.
    let ctx = FileContext::classify("crates/datastores/src/envelope.rs");
    assert!(ctx.hot_path && !ctx.fault_path);
    assert!(lint_fixture("d3_engine_fires.rs", ctx).is_empty());
}

/// The WAL codec is the one module allowed to touch raw framed bytes, so
/// W1 must not fire there under its *real* classified context — while the
/// engine and recovery modules next door stay covered.
#[test]
fn w1_exempts_the_wal_codec_home() {
    let codec = FileContext::classify("crates/datastores/src/wal.rs");
    assert!(codec.deterministic && codec.wal_codec && !codec.test_file);
    assert!(lint_fixture("w1_fires.rs", codec).is_empty());
    for module in [
        "crates/datastores/src/engine.rs",
        "crates/datastores/src/recovery.rs",
        "crates/datastores/src/repair.rs",
    ] {
        let ctx = FileContext::classify(module);
        assert!(!ctx.wal_codec, "{module}");
        let findings = lint_fixture("w1_fires.rs", ctx);
        assert_eq!(findings.len(), 1, "{module}: {findings:#?}");
        assert_eq!(findings[0].rule, Rule::UncheckedWalRead, "{module}");
    }
}

/// The gate the CI job enforces, asserted here too so a plain
/// `cargo test --workspace` catches a regression without the binary.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "{}", root.display());
    let findings = antipode_lint::scan_workspace(&root).expect("scan");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

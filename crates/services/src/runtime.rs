//! The service runtime: network hops and the deployment-wide handle.
//!
//! Applications are async functions over shared state; the runtime supplies
//! the pieces a real deployment would: message transit between regions
//! ([`Runtime::hop`]), round trips ([`Runtime::rpc_rtt`]), and a shared
//! deterministic RNG stream for arrival processes.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::net::Network;
use antipode_sim::rng::SimRng;
use antipode_sim::{Region, Sim};

/// Deployment-wide runtime handle. Cheap to clone.
#[derive(Clone)]
pub struct Runtime {
    sim: Sim,
    net: Rc<Network>,
    rng: Rc<RefCell<SimRng>>,
}

impl Runtime {
    /// Creates a runtime over the given network topology.
    pub fn new(sim: &Sim, net: Rc<Network>) -> Self {
        let rng = Rc::new(RefCell::new(sim.rng("runtime")));
        Runtime {
            sim: sim.clone(),
            net,
            rng,
        }
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The network model.
    pub fn net(&self) -> &Rc<Network> {
        &self.net
    }

    /// One-way message transit from `from` to `to` (an RPC request leg, a
    /// queue hand-off, …). Consults the simulation's [fault
    /// plan](antipode_sim::FaultPlan): the message parks while the link is
    /// partitioned or either region is down, and active link-degradation
    /// windows add extra sampled delay. With no active faults this costs
    /// exactly one latency sample, as before.
    pub async fn hop(&self, from: Region, to: Region) {
        let faults = self.sim.faults();
        let pred = faults.clone();
        faults
            .until_clear(&self.sim, move |at| pred.link_blocked(at, from, to))
            .await;
        let d = {
            let mut rng = self.rng.borrow_mut();
            self.net
                .delay_faulted(&mut *rng, from, to, &faults, self.sim.now())
        };
        self.sim.sleep(d).await;
    }

    /// A full request/response round trip between two regions.
    pub async fn rpc_rtt(&self, a: Region, b: Region) {
        self.hop(a, b).await;
        self.hop(b, a).await;
    }

    /// Samples an exponential inter-arrival gap for a Poisson process with
    /// the given rate (events per second).
    pub fn poisson_gap(&self, rate: f64) -> Duration {
        use rand::Rng;
        let u: f64 = 1.0 - self.rng.borrow_mut().random::<f64>();
        if rate <= 0.0 {
            return Duration::from_secs(3600);
        }
        Duration::from_secs_f64((-u.ln()) / rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::SimTime;

    #[test]
    fn hop_advances_time_by_link_latency() {
        let sim = Sim::new(1);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        let t = sim.block_on({
            let sim = sim.clone();
            async move {
                rt.hop(US, EU).await;
                sim.now()
            }
        });
        let secs = t.since(SimTime::ZERO).as_secs_f64();
        assert!((0.02..0.12).contains(&secs), "US→EU hop {secs}s");
    }

    #[test]
    fn rtt_is_roughly_double_the_hop() {
        let sim = Sim::new(2);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        sim.block_on({
            let rt = rt.clone();
            async move { rt.rpc_rtt(US, EU).await }
        });
        let secs = sim.now().as_secs_f64();
        assert!((0.05..0.25).contains(&secs), "US↔EU rtt {secs}s");
    }

    #[test]
    fn poisson_gaps_average_to_rate() {
        let sim = Sim::new(3);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rt.poisson_gap(100.0).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean gap {mean}");
    }

    #[test]
    fn zero_rate_does_not_panic() {
        let sim = Sim::new(4);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        assert!(rt.poisson_gap(0.0) > Duration::from_secs(60));
    }
}

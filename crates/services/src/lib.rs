//! # antipode-runtime
//!
//! A simulated microservice runtime on top of `antipode-sim`:
//!
//! - [`Runtime`]: network hops / RPC round trips between regions;
//! - [`Service`]: bounded worker pools with service-time models (what makes
//!   throughput/latency saturation curves appear in Figs 8–9);
//! - [`RequestCtx`]: baggage + lineage context propagation per request;
//! - [`rpc`]: typed endpoints with automatic lineage propagation on request
//!   *and* response (§6.2), plus per-attempt timeouts, exponential-backoff
//!   retries with deterministic jitter, and circuit breakers for riding out
//!   chaos-plane faults;
//! - [`workload`]: open-loop Poisson and closed-loop drivers with
//!   latency/throughput metrics;
//! - [`speculation`]: the service half of the speculation plane — a
//!   [`Speculator`] that runs handlers past heavy-tail barriers with side
//!   effects confined, commits on confirmation, and rolls back + redelivers
//!   on violation, governed by per-endpoint caps and a kill switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod request;
pub mod rpc;
pub mod runtime;
pub mod service;
pub mod speculation;
pub mod workload;

pub use request::RequestCtx;
pub use rpc::{
    call_and_absorb, BreakerConfig, BreakerState, CircuitBreaker, Endpoint, RetryPolicy, RpcError,
};
pub use runtime::Runtime;
pub use service::{Service, ServiceSpec};
pub use speculation::{SpecError, SpecOutcome, SpecStats, SpeculationPolicy, Speculator};
pub use workload::{run_open_loop, ClosedLoop, LoadMetrics, OpenLoop};

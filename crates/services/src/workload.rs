//! Workload drivers: open-loop (Poisson) request generation and the
//! latency/throughput bookkeeping the experiments report.
//!
//! The paper's macro-benchmarks run "for 5 minutes in open-loop" at offered
//! loads of 50–150 req/s (DeathStarBench) and up to ~400 req/s (TrainTicket);
//! [`OpenLoop`] reproduces that driver.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::{Samples, Sim, SimTime};

use crate::runtime::Runtime;

/// Shared collector for request latencies and completion counts.
#[derive(Clone, Default)]
pub struct LoadMetrics {
    inner: Rc<RefCell<LoadMetricsInner>>,
}

#[derive(Default)]
struct LoadMetricsInner {
    latencies: Samples,
    issued: u64,
    completed: u64,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    last_completion: Option<SimTime>,
}

impl LoadMetrics {
    /// Creates an empty collector.
    pub fn new() -> Self {
        LoadMetrics::default()
    }

    /// Records a completed request and its latency.
    pub fn record(&self, latency: Duration) {
        let mut m = self.inner.borrow_mut();
        m.completed += 1;
        m.latencies.record_duration(latency);
    }

    /// Records a completed request at a known completion instant, so
    /// saturated systems (completions trailing the issue window) report
    /// reduced throughput.
    pub fn record_at(&self, latency: Duration, completed_at: SimTime) {
        let mut m = self.inner.borrow_mut();
        m.completed += 1;
        m.latencies.record_duration(latency);
        m.last_completion = Some(
            m.last_completion
                .map_or(completed_at, |t| t.max(completed_at)),
        );
    }

    fn note_issued(&self, now: SimTime) {
        let mut m = self.inner.borrow_mut();
        m.issued += 1;
        m.started_at.get_or_insert(now);
        m.finished_at = Some(now);
    }

    /// Requests issued by the driver.
    pub fn issued(&self) -> u64 {
        self.inner.borrow().issued
    }

    /// Requests that completed and reported a latency.
    pub fn completed(&self) -> u64 {
        self.inner.borrow().completed
    }

    /// Achieved throughput in requests/second: completions divided by the
    /// window from the first issue to the later of the last issue and the
    /// last [`LoadMetrics::record_at`] completion.
    pub fn throughput(&self) -> f64 {
        let m = self.inner.borrow();
        let Some(a) = m.started_at else { return 0.0 };
        let mut b = m.finished_at.unwrap_or(a);
        if let Some(c) = m.last_completion {
            b = b.max(c);
        }
        if b > a {
            m.completed as f64 / b.since(a).as_secs_f64()
        } else {
            0.0
        }
    }

    /// Latency summary, if any requests completed.
    pub fn latency(&self) -> Option<antipode_sim::Summary> {
        self.inner.borrow().latencies.summary()
    }

    /// A copy of the raw latency samples.
    pub fn samples(&self) -> Samples {
        self.inner.borrow().latencies.clone()
    }
}

/// An open-loop Poisson request driver.
pub struct OpenLoop {
    /// Offered load in requests per second.
    pub rate: f64,
    /// How long to keep issuing requests (virtual time).
    pub duration: Duration,
}

impl OpenLoop {
    /// Creates a driver.
    pub fn new(rate: f64, duration: Duration) -> Self {
        OpenLoop { rate, duration }
    }

    /// Issues requests at Poisson arrivals for the configured duration. For
    /// each arrival, `spawn_request(i)` must start the request as a separate
    /// task (the driver never waits for request completion — that is the
    /// point of open loop). Returns once the last request has been issued;
    /// run the simulation to quiescence to let in-flight requests finish.
    pub async fn drive(
        &self,
        rt: &Runtime,
        metrics: &LoadMetrics,
        mut spawn_request: impl FnMut(u64),
    ) {
        let sim = rt.sim().clone();
        let end = sim.now() + self.duration;
        let mut i = 0u64;
        loop {
            let gap = rt.poisson_gap(self.rate);
            let next = sim.now() + gap;
            if next > end {
                break;
            }
            sim.sleep(gap).await;
            metrics.note_issued(sim.now());
            spawn_request(i);
            i += 1;
        }
    }
}

/// A closed-loop driver: `clients` independent clients, each issuing the
/// next request only after the previous one completed plus a think time.
/// Offered load self-regulates with latency, so a closed-loop run never
/// overloads the system — useful as the counterpart to [`OpenLoop`] for
/// capacity probing.
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Think time between a completion and the next request.
    pub think: Duration,
    /// How long each client keeps issuing requests (virtual time).
    pub duration: Duration,
}

impl ClosedLoop {
    /// Creates a driver.
    pub fn new(clients: usize, think: Duration, duration: Duration) -> Self {
        ClosedLoop {
            clients,
            think,
            duration,
        }
    }

    /// Runs the clients to completion. `request(client, i)` must return a
    /// future performing one request; its latency is recorded automatically.
    pub fn run<F, Fut>(&self, sim: &Sim, request: F) -> LoadMetrics
    where
        F: Fn(usize, u64) -> Fut + 'static,
        Fut: std::future::Future<Output = ()> + 'static,
    {
        let metrics = LoadMetrics::new();
        let request = Rc::new(request);
        for client in 0..self.clients {
            let sim2 = sim.clone();
            let metrics = metrics.clone();
            let request = request.clone();
            let think = self.think;
            let duration = self.duration;
            sim.spawn(async move {
                let end = sim2.now() + duration;
                let mut i = 0u64;
                while sim2.now() < end {
                    metrics.note_issued(sim2.now());
                    let start = sim2.now();
                    request(client, i).await;
                    metrics.record_at(sim2.now().since(start), sim2.now());
                    i += 1;
                    sim2.sleep(think).await;
                }
            });
        }
        sim.run();
        metrics
    }
}

/// Convenience: run a full open-loop experiment to completion and return the
/// metrics. `make_request` is called per arrival and must spawn the request
/// task, reporting completions into the metrics itself.
pub fn run_open_loop(
    sim: &Sim,
    rt: &Runtime,
    rate: f64,
    duration: Duration,
    mut make_request: impl FnMut(u64, LoadMetrics) + 'static,
) -> LoadMetrics {
    let metrics = LoadMetrics::new();
    let driver = OpenLoop::new(rate, duration);
    let rt2 = rt.clone();
    let m2 = metrics.clone();
    sim.block_on(async move {
        let m3 = m2.clone();
        driver
            .drive(&rt2, &m2, move |i| make_request(i, m3.clone()))
            .await;
    });
    sim.run(); // drain in-flight requests
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::Network;
    use antipode_sim::Sim;

    #[test]
    fn open_loop_issues_at_requested_rate() {
        let sim = Sim::new(9);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        let metrics = run_open_loop(&sim, &rt, 100.0, Duration::from_secs(30), {
            let sim = sim.clone();
            move |_, m| {
                let sim = sim.clone();
                sim.clone().spawn(async move {
                    let start = sim.now();
                    sim.sleep(Duration::from_millis(5)).await;
                    m.record(sim.now().since(start));
                });
            }
        });
        let issued = metrics.issued() as f64;
        assert!(
            (2400.0..3600.0).contains(&issued),
            "issued {issued} in 30s at 100rps"
        );
        assert_eq!(metrics.issued(), metrics.completed());
        let tput = metrics.throughput();
        assert!((85.0..115.0).contains(&tput), "throughput {tput}");
        let lat = metrics.latency().unwrap();
        assert!((lat.mean - 0.005).abs() < 1e-6, "latency mean {}", lat.mean);
    }

    #[test]
    fn open_loop_does_not_wait_for_requests() {
        // Requests take 10 virtual minutes; issuing 1s of load must not take
        // 10 minutes of issue time.
        let sim = Sim::new(10);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        let metrics = run_open_loop(&sim, &rt, 50.0, Duration::from_secs(1), {
            let sim = sim.clone();
            move |_, m| {
                let sim = sim.clone();
                sim.clone().spawn(async move {
                    let start = sim.now();
                    sim.sleep(Duration::from_secs(600)).await;
                    m.record(sim.now().since(start));
                });
            }
        });
        assert!(metrics.completed() > 0);
        // All requests eventually completed after drain.
        assert_eq!(metrics.issued(), metrics.completed());
    }

    #[test]
    fn empty_metrics_are_sane() {
        let m = LoadMetrics::new();
        assert_eq!(m.throughput(), 0.0);
        assert!(m.latency().is_none());
    }

    #[test]
    fn closed_loop_self_regulates() {
        // 4 clients, 10ms requests, no think time: throughput ≈ 400 rps
        // regardless of how slow the "service" is relative to open loop.
        let sim = Sim::new(11);
        let driver = ClosedLoop::new(4, Duration::ZERO, Duration::from_secs(10));
        let s = sim.clone();
        let metrics = driver.run(&sim, move |_, _| {
            let s = s.clone();
            async move { s.sleep(Duration::from_millis(10)).await }
        });
        let tput = metrics.throughput();
        assert!((360.0..440.0).contains(&tput), "throughput {tput}");
        let lat = metrics.latency().unwrap();
        assert!((lat.mean - 0.010).abs() < 1e-6);
    }

    #[test]
    fn closed_loop_think_time_reduces_load() {
        let sim = Sim::new(12);
        let driver = ClosedLoop::new(2, Duration::from_millis(90), Duration::from_secs(10));
        let s = sim.clone();
        let metrics = driver.run(&sim, move |_, _| {
            let s = s.clone();
            async move { s.sleep(Duration::from_millis(10)).await }
        });
        // Each client: one request per 100ms → ~20 rps total.
        let tput = metrics.throughput();
        assert!((15.0..25.0).contains(&tput), "throughput {tput}");
    }
}

//! The speculation plane (service half): orchestration, caps, rollback.
//!
//! [`Speculator::run`] wraps one handler execution in the full speculative
//! lifecycle: try a bounded barrier; if dependencies are still unmet,
//! proceed immediately with every side effect parked in a
//! [`ConfinementBuffer`]; commit the buffer when the frontier confirms;
//! discard it and *redeliver* the handler when the speculation is violated.
//! Redelivery runs behind an unbounded blocking barrier — by the time the
//! recovery plane heals the fault (WAL replay, hinted handoff), the
//! dependencies land and the redelivered execution commits like a plain
//! blocking one. Combined with [`crate::Endpoint::rollback_resumable`], the
//! same discipline extends to RPC responses: a violated speculation forgets
//! the cached resumable response so the next delivery re-runs the handler.
//!
//! Two governors keep speculation an optimization rather than a liability:
//! a per-endpoint *cap* on concurrently open frontiers (excess requests fall
//! back to blocking barriers instead of ballooning confinement memory), and
//! a *kill switch* ([`Speculator::set_enabled`]) that degrades the whole
//! endpoint to blocking barriers at runtime.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::rc::Rc;

use antipode::{Antipode, BarrierError, BarrierOutcome, SpecState, SpeculationConfig};
use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use antipode_store::shim::ShimError;
use antipode_store::speculation::ConfinementBuffer;

/// Errors from [`Speculator::run`].
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// A barrier (blocking, speculative, or redelivery) failed hard.
    Barrier(BarrierError),
    /// Committing the confinement buffer failed at a store.
    Commit(ShimError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Barrier(e) => write!(f, "speculation barrier failed: {e}"),
            SpecError::Commit(e) => write!(f, "confinement commit failed: {e}"),
        }
    }
}
impl std::error::Error for SpecError {}

impl From<BarrierError> for SpecError {
    fn from(e: BarrierError) -> Self {
        SpecError::Barrier(e)
    }
}
impl From<ShimError> for SpecError {
    fn from(e: ShimError) -> Self {
        SpecError::Commit(e)
    }
}

/// Per-endpoint speculation tuning.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeculationPolicy {
    /// Master switch; `false` degrades every request to a blocking barrier.
    pub enabled: bool,
    /// Maximum concurrently open frontiers for this endpoint. Requests
    /// beyond the cap fall back to blocking barriers.
    pub max_open: usize,
    /// Blocking and confirmation budgets for the speculative barrier.
    pub barrier: SpeculationConfig,
}

impl Default for SpeculationPolicy {
    fn default() -> Self {
        SpeculationPolicy {
            enabled: true,
            max_open: 64,
            barrier: SpeculationConfig::default(),
        }
    }
}

/// Counters of everything one [`Speculator`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Handler executions routed through [`Speculator::run`].
    pub attempts: u64,
    /// Executions that opened a speculation frontier.
    pub speculated: u64,
    /// Speculations whose frontier confirmed (buffer committed).
    pub confirmed: u64,
    /// Speculations whose frontier violated (buffer discarded).
    pub violated: u64,
    /// Executions degraded to a blocking barrier by the kill switch or the
    /// open-frontier cap.
    pub fell_back: u64,
    /// Violated executions re-run behind a blocking barrier.
    pub redelivered: u64,
    /// Confined writes discarded by violation rollbacks.
    pub rolled_back_writes: u64,
    /// Confined writes committed after confirmation (speculative path only).
    pub committed_writes: u64,
    /// Largest confinement buffer any single execution ever held.
    pub buffer_high_water: usize,
}

struct SpeculatorInner {
    ap: Antipode,
    policy: RefCell<SpeculationPolicy>,
    open: RefCell<usize>,
    stats: RefCell<SpecStats>,
}

/// Runs handler executions under the speculative-barrier lifecycle. Cheap to
/// clone; clones share the cap, the kill switch, and the stats — one
/// speculator per service endpoint.
#[derive(Clone)]
pub struct Speculator {
    inner: Rc<SpeculatorInner>,
}

/// How [`Speculator::run`] completed, carrying the handler value and the
/// identifiers of every committed (previously confined) write.
#[derive(Debug)]
pub enum SpecOutcome<T> {
    /// No speculation: the barrier completed (in budget or blocking) before
    /// the handler ran.
    Blocking {
        /// Handler result.
        value: T,
        /// Writes committed from the confinement buffer.
        committed: Vec<WriteId>,
    },
    /// The handler ran ahead of an open frontier that then confirmed; the
    /// confined effects were committed atomically afterwards.
    Confirmed {
        /// Handler result.
        value: T,
        /// Writes committed from the confinement buffer.
        committed: Vec<WriteId>,
    },
    /// The speculation was violated: the first execution's confined effects
    /// were discarded, and the handler was redelivered behind a blocking
    /// barrier. `value`/`committed` are the *redelivered* execution's.
    RolledBack {
        /// Redelivered handler result.
        value: T,
        /// Writes committed by the redelivered execution.
        committed: Vec<WriteId>,
        /// Confined writes discarded from the violated first execution.
        discarded: usize,
    },
}

impl<T> SpecOutcome<T> {
    /// The handler value (the redelivered one after a rollback).
    pub fn value(&self) -> &T {
        match self {
            SpecOutcome::Blocking { value, .. }
            | SpecOutcome::Confirmed { value, .. }
            | SpecOutcome::RolledBack { value, .. } => value,
        }
    }

    /// The committed write identifiers.
    pub fn committed(&self) -> &[WriteId] {
        match self {
            SpecOutcome::Blocking { committed, .. }
            | SpecOutcome::Confirmed { committed, .. }
            | SpecOutcome::RolledBack { committed, .. } => committed,
        }
    }

    /// Whether this execution speculated at all (confirmed or rolled back).
    pub fn speculated(&self) -> bool {
        !matches!(self, SpecOutcome::Blocking { .. })
    }
}

impl Speculator {
    /// A speculator over `ap` with the given policy.
    pub fn new(ap: Antipode, policy: SpeculationPolicy) -> Self {
        Speculator {
            inner: Rc::new(SpeculatorInner {
                ap,
                policy: RefCell::new(policy),
                open: RefCell::new(0),
                stats: RefCell::new(SpecStats::default()),
            }),
        }
    }

    /// The kill switch: `false` degrades every subsequent request to a
    /// blocking barrier (open frontiers keep resolving normally).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.policy.borrow_mut().enabled = enabled;
    }

    /// Whether speculation is currently enabled.
    pub fn enabled(&self) -> bool {
        self.inner.policy.borrow().enabled
    }

    /// Currently open frontiers started by this speculator.
    pub fn open_frontiers(&self) -> usize {
        *self.inner.open.borrow()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> SpecStats {
        self.inner.stats.borrow().clone()
    }

    /// Runs one handler execution under the speculative lifecycle.
    ///
    /// `work` is called with the attempt number (0 for the first execution,
    /// 1 for a post-violation redelivery) and must route every side effect
    /// into the [`ConfinementBuffer`] it returns — the speculator commits
    /// the buffer once it is safe (appending the fresh write identifiers to
    /// `lineage`) or discards it on violation. Requests hitting the kill
    /// switch or the open-frontier cap run behind a plain blocking barrier
    /// instead; their buffers commit immediately after the handler.
    pub async fn run<T, F, Fut>(
        &self,
        lineage: &mut Lineage,
        region: Region,
        work: F,
    ) -> Result<SpecOutcome<T>, SpecError>
    where
        F: Fn(u32) -> Fut,
        Fut: Future<Output = (T, ConfinementBuffer)>,
    {
        self.inner.stats.borrow_mut().attempts += 1;
        let (enabled, max_open, cfg) = {
            let p = self.inner.policy.borrow();
            (p.enabled, p.max_open, p.barrier.clone())
        };
        if !enabled || *self.inner.open.borrow() >= max_open {
            self.inner.stats.borrow_mut().fell_back += 1;
            return self.run_blocking(lineage, region, &work).await;
        }
        let spec = match self
            .inner
            .ap
            .barrier_speculative(lineage, region, &cfg)
            .await?
        {
            BarrierOutcome::Speculative(s) => s,
            BarrierOutcome::Complete(_) => {
                // Dependencies landed within the budget: nothing to confine.
                let (value, mut buf) = work(0).await;
                let committed = self.commit(&mut buf, lineage).await?;
                return Ok(SpecOutcome::Blocking { value, committed });
            }
            BarrierOutcome::Degraded(d) => {
                // `barrier_speculative` never degrades, but stay total:
                // finish the remainder blocking, then run eagerly.
                self.inner.ap.rearm(&d, region, None).await?;
                let (value, mut buf) = work(0).await;
                let committed = self.commit(&mut buf, lineage).await?;
                return Ok(SpecOutcome::Blocking { value, committed });
            }
        };
        // Open frontier: run the handler *now*, effects parked.
        *self.inner.open.borrow_mut() += 1;
        self.inner.stats.borrow_mut().speculated += 1;
        let (value, mut buf) = work(0).await;
        self.note_high_water(&buf);
        let state = spec.frontier.resolved().await;
        *self.inner.open.borrow_mut() -= 1;
        match state {
            SpecState::Confirmed | SpecState::Open => {
                self.inner.stats.borrow_mut().confirmed += 1;
                let committed = self.commit(&mut buf, lineage).await?;
                Ok(SpecOutcome::Confirmed { value, committed })
            }
            SpecState::Violated => {
                let discarded = buf.discard();
                {
                    let mut s = self.inner.stats.borrow_mut();
                    s.violated += 1;
                    s.rolled_back_writes += discarded as u64;
                    s.redelivered += 1;
                }
                // Redelivery: an unbounded blocking barrier rides out the
                // fault (the recovery plane replays the WAL and drains
                // hints once the store restarts), then the handler re-runs
                // and its effects commit like a plain blocking execution.
                self.inner.ap.barrier(lineage, region).await?;
                let (value, mut buf) = work(1).await;
                let committed = self.commit(&mut buf, lineage).await?;
                Ok(SpecOutcome::RolledBack {
                    value,
                    committed,
                    discarded,
                })
            }
        }
    }

    async fn run_blocking<T, F, Fut>(
        &self,
        lineage: &mut Lineage,
        region: Region,
        work: &F,
    ) -> Result<SpecOutcome<T>, SpecError>
    where
        F: Fn(u32) -> Fut,
        Fut: Future<Output = (T, ConfinementBuffer)>,
    {
        self.inner.ap.barrier(lineage, region).await?;
        let (value, mut buf) = work(0).await;
        let committed = self.commit(&mut buf, lineage).await?;
        Ok(SpecOutcome::Blocking { value, committed })
    }

    async fn commit(
        &self,
        buf: &mut ConfinementBuffer,
        lineage: &mut Lineage,
    ) -> Result<Vec<WriteId>, SpecError> {
        self.note_high_water(buf);
        let committed = buf.commit(lineage).await?;
        self.inner.stats.borrow_mut().committed_writes += committed.len() as u64;
        Ok(committed)
    }

    fn note_high_water(&self, buf: &ConfinementBuffer) {
        let mut s = self.inner.stats.borrow_mut();
        s.buffer_high_water = s.buffer_high_water.max(buf.high_water());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode::ConsistencyChecker;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::{FaultKind, Network, Sim, SimTime};
    use antipode_store::replica::{KvProfile, KvStore};
    use antipode_store::shim::KvShim;
    use bytes::Bytes;
    use std::time::Duration;

    fn slow_profile() -> KvProfile {
        KvProfile {
            replication: antipode_sim::Dist::constant_ms(8000.0),
            ..KvProfile::default()
        }
    }

    fn fast_profile() -> KvProfile {
        KvProfile {
            replication: antipode_sim::Dist::constant_ms(50.0),
            ..KvProfile::default()
        }
    }

    struct Cell {
        sim: Sim,
        ap: Antipode,
        post: KvShim,
        feed: KvShim,
    }

    /// A writer-side post store (slow or faulty replication) plus a
    /// reader-side feed store the handler writes into under confinement.
    fn setup(seed: u64, profile: KvProfile) -> Cell {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let post = KvShim::new(KvStore::new(
            &sim,
            net.clone(),
            "post-s3",
            &[EU, US],
            profile,
        ));
        let feed = KvShim::new(KvStore::new(&sim, net, "feed-redis", &[US], fast_profile()));
        let mut ap = Antipode::new(sim.clone());
        ap.register(Rc::new(post.clone()));
        ap.register(Rc::new(feed.clone()));
        Cell {
            sim,
            ap,
            post,
            feed,
        }
    }

    fn policy(budget_ms: u64, confirm_secs: u64) -> SpeculationPolicy {
        SpeculationPolicy {
            enabled: true,
            max_open: 64,
            barrier: SpeculationConfig {
                budget: Duration::from_millis(budget_ms),
                confirm_budget: Duration::from_secs(confirm_secs),
            },
        }
    }

    #[test]
    fn confirmation_path_commits_confined_effects() {
        let cell = setup(1, slow_profile());
        let spec = Speculator::new(cell.ap.clone(), policy(200, 60));
        let sim = cell.sim.clone();
        sim.block_on(async move {
            let mut lineage = Lineage::new(LineageId(1));
            cell.post
                .write(EU, "p1", Bytes::from_static(b"post"), &mut lineage)
                .await
                .unwrap();
            let t0 = cell.sim.now();
            let feed = cell.feed.clone();
            let out = spec
                .run(&mut lineage, US, |_attempt| {
                    let feed = feed.clone();
                    async move {
                        let mut buf = ConfinementBuffer::new();
                        buf.confine_write(&feed, US, "feed-p1", Bytes::from_static(b"p1"));
                        ("rendered", buf)
                    }
                })
                .await
                .unwrap();
            match &out {
                SpecOutcome::Confirmed { value, committed } => {
                    assert_eq!(*value, "rendered");
                    assert_eq!(committed.len(), 1);
                    assert!(lineage.contains(&committed[0]));
                }
                other => panic!("8s replication vs 200ms budget must speculate, got {other:?}"),
            }
            // The commit waited for the confirmation (~8s), not the budget.
            assert!(cell.sim.now().since(t0) >= Duration::from_secs(7));
            let (data, _) = cell.feed.read(US, "feed-p1").await.unwrap().unwrap();
            assert_eq!(data, Bytes::from_static(b"p1"));
            let stats = spec.stats();
            assert_eq!(stats.speculated, 1);
            assert_eq!(stats.confirmed, 1);
            assert_eq!(stats.violated, 0);
            assert_eq!(stats.committed_writes, 1);
            assert_eq!(stats.buffer_high_water, 1);
            assert_eq!(spec.open_frontiers(), 0);
        });
    }

    #[test]
    fn violation_path_discards_then_redelivers_after_heal() {
        let cell = setup(2, slow_profile());
        // Crash the US post replica for [0, 20s): the confirmation barrier
        // cannot see the dep within its 5s budget → violation; the
        // redelivery's unbounded barrier rides out the crash via retries.
        cell.sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(20),
            FaultKind::ReplicaCrash {
                store: "post-s3".into(),
                region: US,
            },
        );
        let spec = Speculator::new(cell.ap.clone(), policy(200, 5));
        let checker = ConsistencyChecker::new(cell.ap.clone());
        let sim = cell.sim.clone();
        sim.block_on(async move {
            let mut lineage = Lineage::new(LineageId(1));
            cell.post
                .write(EU, "p1", Bytes::from_static(b"post"), &mut lineage)
                .await
                .unwrap();
            let feed = cell.feed.clone();
            let checker2 = checker.clone();
            let lineage_snapshot = lineage.clone();
            let out = spec
                .run(&mut lineage, US, move |attempt| {
                    let feed = feed.clone();
                    let checker = checker2.clone();
                    let lineage = lineage_snapshot.clone();
                    async move {
                        // Speculative evaluation: unmet deps here are not
                        // observed violations (effects are confined).
                        checker.checkpoint_speculative("reader:feed", &lineage, US);
                        let mut buf = ConfinementBuffer::new();
                        buf.confine_write(&feed, US, "feed-p1", Bytes::from_static(b"p1"));
                        (attempt, buf)
                    }
                })
                .await
                .unwrap();
            match &out {
                SpecOutcome::RolledBack {
                    value,
                    committed,
                    discarded,
                } => {
                    assert_eq!(*value, 1, "the committed value is the redelivery's");
                    assert_eq!(committed.len(), 1);
                    assert_eq!(*discarded, 1);
                }
                other => panic!("20s crash vs 5s confirm budget must violate, got {other:?}"),
            }
            // Redelivery completed only after the crash healed.
            assert!(cell.sim.now() >= SimTime::from_secs(20));
            // Exactly one feed entry: the discarded attempt never hit the
            // store (version would be 2 on a leak).
            let stored = cell.feed.store().get_sync(US, "feed-p1").unwrap();
            assert_eq!(stored.version, 1, "discarded confined write must not leak");
            // Post-commit the dependency is visible: zero observed XCY.
            let dry = checker.checkpoint("reader:post-commit", &lineage, US);
            assert!(dry.is_satisfied());
            assert_eq!(checker.observed_violations(), 0);
            let stats = spec.stats();
            assert_eq!(stats.violated, 1);
            assert_eq!(stats.redelivered, 1);
            assert_eq!(stats.rolled_back_writes, 1);
        });
    }

    #[test]
    fn kill_switch_degrades_to_blocking_barriers() {
        let cell = setup(3, slow_profile());
        let spec = Speculator::new(cell.ap.clone(), policy(200, 60));
        spec.set_enabled(false);
        assert!(!spec.enabled());
        let sim = cell.sim.clone();
        sim.block_on(async move {
            let mut lineage = Lineage::new(LineageId(1));
            cell.post
                .write(EU, "p1", Bytes::from_static(b"post"), &mut lineage)
                .await
                .unwrap();
            let t0 = cell.sim.now();
            let feed = cell.feed.clone();
            let out = spec
                .run(&mut lineage, US, |_| {
                    let feed = feed.clone();
                    async move {
                        let mut buf = ConfinementBuffer::new();
                        buf.confine_write(&feed, US, "feed-p1", Bytes::new());
                        ((), buf)
                    }
                })
                .await
                .unwrap();
            assert!(matches!(out, SpecOutcome::Blocking { .. }));
            assert!(!out.speculated());
            // Blocking: the handler waited out the full 8s replication.
            assert!(cell.sim.now().since(t0) >= Duration::from_secs(7));
            let stats = spec.stats();
            assert_eq!(stats.fell_back, 1);
            assert_eq!(stats.speculated, 0);
        });
    }

    #[test]
    fn open_frontier_cap_falls_back_to_blocking() {
        let cell = setup(4, slow_profile());
        let spec = Speculator::new(
            cell.ap.clone(),
            SpeculationPolicy {
                max_open: 1,
                ..policy(100, 60)
            },
        );
        let sim = cell.sim.clone();
        let post = cell.post.clone();
        let feed = cell.feed.clone();
        let ap = cell.ap.clone();
        sim.block_on(async move {
            let mut shared = Lineage::new(LineageId(1));
            post.write(EU, "p1", Bytes::from_static(b"post"), &mut shared)
                .await
                .unwrap();
            // First request opens the single allowed frontier.
            let s1 = spec.clone();
            let f1 = feed.clone();
            let l1 = shared.clone();
            let sim2 = ap.sim().clone();
            sim2.spawn(async move {
                let mut l = l1;
                let out = s1
                    .run(&mut l, US, |_| {
                        let f1 = f1.clone();
                        async move {
                            let mut buf = ConfinementBuffer::new();
                            buf.confine_write(&f1, US, "feed-a", Bytes::new());
                            ((), buf)
                        }
                    })
                    .await
                    .unwrap();
                assert!(out.speculated());
            });
            // Give the first request time to open its frontier.
            ap.sim().sleep(Duration::from_millis(500)).await;
            assert_eq!(spec.open_frontiers(), 1);
            // Second request hits the cap: blocking fallback.
            let out = spec
                .run(&mut shared, US, |_| {
                    let feed = feed.clone();
                    async move {
                        let mut buf = ConfinementBuffer::new();
                        buf.confine_write(&feed, US, "feed-b", Bytes::new());
                        ((), buf)
                    }
                })
                .await
                .unwrap();
            assert!(matches!(out, SpecOutcome::Blocking { .. }));
            assert_eq!(spec.stats().fell_back, 1);
        });
        sim.run();
    }
}

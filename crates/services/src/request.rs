//! Per-request context: baggage plus the Antipode lineage context.
//!
//! Mirrors how a real service framework couples OpenTelemetry baggage with
//! the request's execution: [`RequestCtx::root`] at the edge, `outgoing()`
//! when issuing an RPC or enqueueing a message, `from_baggage()` on the
//! receiving side.

use antipode::{LineageCtx, LineageIdGen};
use antipode_lineage::{Baggage, Lineage};

/// Context carried by one in-flight request at one service.
#[derive(Clone, Debug, Default)]
pub struct RequestCtx {
    /// Propagated string-keyed baggage (carries the lineage).
    pub baggage: Baggage,
    /// The Antipode lineage context.
    pub lineage: LineageCtx,
}

impl RequestCtx {
    /// Starts a fresh request at the system edge with a new root lineage.
    pub fn root(gen: &LineageIdGen) -> Self {
        let mut ctx = RequestCtx::default();
        ctx.lineage.root(gen);
        ctx
    }

    /// Reconstructs the context from incoming baggage (RPC server side or
    /// queue consumer).
    pub fn from_baggage(baggage: Baggage) -> Self {
        let mut lineage = LineageCtx::new();
        lineage.extract(&baggage);
        RequestCtx { baggage, lineage }
    }

    /// The baggage to attach to an outgoing RPC or message: current baggage
    /// with the up-to-date lineage injected.
    pub fn outgoing(&self) -> Baggage {
        let mut b = self.baggage.clone();
        self.lineage.inject(&mut b);
        b
    }

    /// Merges a lineage returned by a downstream call (RPC responses also
    /// carry lineages, §6.2) into the current one.
    pub fn absorb_response(&mut self, response: &Baggage) {
        if let Ok(returned) = response.lineage() {
            match self.lineage.lineage_mut() {
                Some(cur) => cur.transfer_from(&returned),
                None => self.lineage.adopt(returned),
            }
        }
    }

    /// The current lineage (convenience).
    pub fn current(&self) -> Option<&Lineage> {
        self.lineage.lineage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::WriteId;

    #[test]
    fn rpc_round_trip_carries_new_dependencies() {
        let gen = LineageIdGen::new(1);
        // Client starts a request.
        let mut client = RequestCtx::root(&gen);
        // Server receives the call…
        let mut server = RequestCtx::from_baggage(client.outgoing());
        // …performs a shim write (the shim appends to the lineage)…
        server.lineage.append(WriteId::new("posts", "p1", 1));
        // …and replies. The client absorbs the updated lineage.
        client.absorb_response(&server.outgoing());
        assert!(client
            .current()
            .unwrap()
            .contains(&WriteId::new("posts", "p1", 1)));
    }

    #[test]
    fn from_baggage_without_lineage_yields_empty_ctx() {
        let ctx = RequestCtx::from_baggage(Baggage::new());
        assert!(ctx.current().is_none());
    }

    #[test]
    fn absorb_response_adopts_when_no_current() {
        let gen = LineageIdGen::new(1);
        let mut upstream = RequestCtx::root(&gen);
        upstream.lineage.append(WriteId::new("s", "k", 1));
        let mut fresh = RequestCtx::default();
        fresh.absorb_response(&upstream.outgoing());
        assert!(fresh
            .current()
            .unwrap()
            .contains(&WriteId::new("s", "k", 1)));
    }

    #[test]
    fn outgoing_reflects_latest_lineage() {
        let gen = LineageIdGen::new(1);
        let mut ctx = RequestCtx::root(&gen);
        ctx.lineage.append(WriteId::new("s", "k", 2));
        let b = ctx.outgoing();
        assert!(b.lineage().unwrap().contains(&WriteId::new("s", "k", 2)));
    }
}

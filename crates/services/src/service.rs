//! Service capacity modeling.
//!
//! A [`Service`] is a named worker pool in one region: each handler step
//! acquires a worker, holds it for a sampled service time, and releases it.
//! Bounded workers are what produce realistic throughput/latency saturation
//! curves (Figs 8 and 9): as offered load approaches capacity, queueing
//! delay dominates.

use std::cell::RefCell;
use std::rc::Rc;

use antipode_sim::dist::Dist;
use antipode_sim::rng::SimRng;
use antipode_sim::sync::Semaphore;
use antipode_sim::{Region, Sim};

/// Configuration of one service instance.
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Service name (diagnostics).
    pub name: String,
    /// Region the instance runs in.
    pub region: Region,
    /// Concurrent workers (threads / async slots).
    pub workers: usize,
    /// Per-step CPU/service time.
    pub service_time: Dist,
    /// Load-shedding bound: when this many requests are already queued for a
    /// worker, the instance reports itself overloaded and resilient callers
    /// ([`crate::rpc::Endpoint::try_call_from`]) shed instead of queueing.
    /// `None` (default) never sheds.
    pub queue_limit: Option<usize>,
}

impl ServiceSpec {
    /// A spec with the given name and region, default 8 workers and 1 ms
    /// steps.
    pub fn new(name: impl Into<String>, region: Region) -> Self {
        ServiceSpec {
            name: name.into(),
            region,
            workers: 8,
            service_time: Dist::lognormal_ms(1.0, 0.3),
            queue_limit: None,
        }
    }

    /// Sets the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets the load-shedding queue bound (see [`ServiceSpec::queue_limit`]).
    pub fn queue_limit(mut self, n: usize) -> Self {
        self.queue_limit = Some(n);
        self
    }

    /// Sets the service-time distribution.
    pub fn service_time(mut self, d: Dist) -> Self {
        self.service_time = d;
        self
    }
}

struct ServiceInner {
    spec: ServiceSpec,
    sim: Sim,
    sem: Semaphore,
    rng: RefCell<SimRng>,
}

/// A running service instance.
#[derive(Clone)]
pub struct Service {
    inner: Rc<ServiceInner>,
}

impl Service {
    /// Starts a service instance.
    pub fn new(sim: &Sim, spec: ServiceSpec) -> Self {
        let sem = Semaphore::new(spec.workers.max(1));
        let rng = RefCell::new(sim.rng(&format!("service:{}:{}", spec.name, spec.region)));
        Service {
            inner: Rc::new(ServiceInner {
                spec,
                sim: sim.clone(),
                sem,
                rng,
            }),
        }
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.inner.spec.name
    }

    /// The region this instance runs in.
    pub fn region(&self) -> Region {
        self.inner.spec.region
    }

    /// Parks while the simulation's fault plan has this service crashed
    /// (an active [`antipode_sim::FaultKind::ServiceCrash`] window). Returns
    /// immediately — without yielding — when the service is up, so fault-free
    /// runs are timing-identical to a build without the chaos plane.
    async fn await_alive(&self) {
        let faults = self.inner.sim.faults();
        let pred = faults.clone();
        let name = self.inner.spec.name.clone();
        faults
            .until_clear(&self.inner.sim, move |at| pred.service_down(at, &name))
            .await;
    }

    /// Executes one handler step: queue for a worker, hold it for a sampled
    /// service time. This is the unit of CPU work in the apps.
    pub async fn process(&self) {
        self.await_alive().await;
        let _permit = self.inner.sem.acquire().await;
        let d = {
            let mut rng = self.inner.rng.borrow_mut();
            self.inner.spec.service_time.sample_duration(&mut rng)
        };
        self.inner.sim.sleep(d).await;
    }

    /// Executes a handler step of a custom duration factor (e.g. heavier
    /// endpoints costing several base steps).
    pub async fn process_scaled(&self, factor: f64) {
        self.await_alive().await;
        let _permit = self.inner.sem.acquire().await;
        let d = {
            let mut rng = self.inner.rng.borrow_mut();
            self.inner
                .spec
                .service_time
                .sample_duration(&mut rng)
                .mul_f64(factor.max(0.0))
        };
        self.inner.sim.sleep(d).await;
    }

    /// Requests currently queued for a worker (diagnostics).
    pub fn queue_depth(&self) -> usize {
        self.inner.sem.waiting()
    }

    /// Whether the instance is past its configured queue bound and resilient
    /// callers should shed rather than pile on. Always `false` without a
    /// [`ServiceSpec::queue_limit`].
    pub fn overloaded(&self) -> bool {
        self.inner
            .spec
            .queue_limit
            .is_some_and(|limit| self.queue_depth() >= limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::US;
    use std::cell::Cell;

    #[test]
    fn process_takes_service_time() {
        let sim = Sim::new(1);
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", US).service_time(Dist::constant_ms(5.0)),
        );
        sim.block_on({
            let svc = svc.clone();
            async move { svc.process().await }
        });
        assert_eq!(sim.now().as_nanos(), 5_000_000);
    }

    #[test]
    fn saturation_queues_requests() {
        // 1 worker, 10ms per step, 10 requests arriving at once: the last
        // completes at ~100ms.
        let sim = Sim::new(2);
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", US)
                .workers(1)
                .service_time(Dist::constant_ms(10.0)),
        );
        let done = Rc::new(Cell::new(0));
        for _ in 0..10 {
            let svc = svc.clone();
            let done = done.clone();
            sim.spawn(async move {
                svc.process().await;
                done.set(done.get() + 1);
            });
        }
        sim.run();
        assert_eq!(done.get(), 10);
        assert_eq!(sim.now().as_nanos(), 100_000_000);
    }

    #[test]
    fn parallel_workers_overlap() {
        let sim = Sim::new(3);
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", US)
                .workers(10)
                .service_time(Dist::constant_ms(10.0)),
        );
        for _ in 0..10 {
            let svc = svc.clone();
            sim.spawn(async move { svc.process().await });
        }
        sim.run();
        assert_eq!(
            sim.now().as_nanos(),
            10_000_000,
            "10 workers run 10 jobs in one step"
        );
    }

    #[test]
    fn queue_limit_reports_overload_until_the_backlog_drains() {
        use std::time::Duration;
        let sim = Sim::new(5);
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", US)
                .workers(1)
                .queue_limit(2)
                .service_time(Dist::constant_ms(10.0)),
        );
        assert!(!svc.overloaded(), "idle instance is never overloaded");
        for _ in 0..4 {
            let svc = svc.clone();
            sim.spawn(async move { svc.process().await });
        }
        sim.run_for(Duration::from_millis(1));
        // One in service, three queued: past the bound of 2.
        assert!(svc.queue_depth() >= 2);
        assert!(svc.overloaded());
        sim.run();
        assert_eq!(svc.queue_depth(), 0);
        assert!(!svc.overloaded(), "drained backlog clears the overload");
    }

    #[test]
    fn process_scaled_multiplies_cost() {
        let sim = Sim::new(4);
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", US).service_time(Dist::constant_ms(2.0)),
        );
        sim.block_on({
            let svc = svc.clone();
            async move { svc.process_scaled(3.0).await }
        });
        assert_eq!(sim.now().as_nanos(), 6_000_000);
    }
}

//! Typed RPC endpoints with automatic lineage propagation (paper §6.2:
//! "Services must include their lineages with all RPC requests and
//! responses").
//!
//! An [`Endpoint`] couples a [`Service`] (worker pool + service time) with a
//! handler. [`Endpoint::call`] performs the full client-side protocol:
//! inject the caller's lineage into outgoing baggage, transit the network,
//! queue for a worker, run the handler under the server-side
//! [`RequestCtx`], transit back, and absorb the (possibly extended) lineage
//! from the response — so shim writes inside handlers flow back to callers
//! without any manual bookkeeping.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use antipode_lineage::Baggage;

use crate::request::RequestCtx;
use crate::runtime::Runtime;
use crate::service::Service;

type BoxFut<T> = Pin<Box<dyn Future<Output = T>>>;
type Handler<Req, Resp> = dyn Fn(Req, RequestCtx) -> BoxFut<(Resp, RequestCtx)>;

/// A callable service endpoint.
pub struct Endpoint<Req, Resp> {
    rt: Runtime,
    service: Service,
    handler: Rc<Handler<Req, Resp>>,
}

impl<Req, Resp> Clone for Endpoint<Req, Resp> {
    fn clone(&self) -> Self {
        Endpoint {
            rt: self.rt.clone(),
            service: self.service.clone(),
            handler: self.handler.clone(),
        }
    }
}

impl<Req: 'static, Resp: 'static> Endpoint<Req, Resp> {
    /// Creates an endpoint from a handler. The handler receives the request
    /// and the server-side [`RequestCtx`] (lineage extracted from the
    /// incoming baggage) and returns the response plus the (possibly
    /// updated) context.
    pub fn new<F, Fut>(rt: &Runtime, service: Service, handler: F) -> Self
    where
        F: Fn(Req, RequestCtx) -> Fut + 'static,
        Fut: Future<Output = (Resp, RequestCtx)> + 'static,
    {
        Endpoint {
            rt: rt.clone(),
            service,
            handler: Rc::new(move |req, ctx| Box::pin(handler(req, ctx)) as BoxFut<_>),
        }
    }

    /// Calls the endpoint from `ctx` (whose lineage rides the request and is
    /// extended by whatever the handler wrote).
    pub async fn call(&self, caller: &RequestCtx, req: Req) -> (Resp, Baggage) {
        // The call must originate somewhere; we model the caller's region as
        // the callee's for intra-deployment calls unless overridden by
        // call_from.
        self.call_from(self.service.region(), caller, req).await
    }

    /// Like [`Endpoint::call`], with an explicit caller region (pays the
    /// inter-region transit both ways).
    pub async fn call_from(
        &self,
        from: antipode_sim::Region,
        caller: &RequestCtx,
        req: Req,
    ) -> (Resp, Baggage) {
        let outgoing = caller.outgoing();
        self.rt.hop(from, self.service.region()).await;
        // Queue for a worker and execute the handler under the server ctx.
        self.service.process().await;
        let server_ctx = RequestCtx::from_baggage(outgoing);
        let (resp, server_ctx) = (self.handler)(req, server_ctx).await;
        let response_baggage = server_ctx.outgoing();
        self.rt.hop(self.service.region(), from).await;
        (resp, response_baggage)
    }

    /// The underlying service.
    pub fn service(&self) -> &Service {
        &self.service
    }
}

/// Convenience: call and absorb the response lineage into the caller's
/// context in one step (the common client pattern).
pub async fn call_and_absorb<Req: 'static, Resp: 'static>(
    endpoint: &Endpoint<Req, Resp>,
    from: antipode_sim::Region,
    ctx: &mut RequestCtx,
    req: Req,
) -> Resp {
    let (resp, baggage) = endpoint.call_from(from, ctx, req).await;
    ctx.absorb_response(&baggage);
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceSpec;
    use antipode::LineageIdGen;
    use antipode_lineage::WriteId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::time::Duration;

    fn setup() -> (Sim, Runtime) {
        let sim = Sim::new(0x49C);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        (sim, rt)
    }

    #[test]
    fn call_round_trips_and_extends_lineage() {
        let (sim, rt) = setup();
        let svc = Service::new(&sim, ServiceSpec::new("post-storage", EU));
        // Handler performs a (simulated) shim write: appends to the lineage.
        let endpoint = Endpoint::new(&rt, svc, |post_id: u64, mut ctx: RequestCtx| async move {
            ctx.lineage
                .append(WriteId::new("posts", format!("p{post_id}"), 1));
            (format!("stored p{post_id}"), ctx)
        });
        let resp = sim.block_on(async move {
            let gen = LineageIdGen::new(1);
            let mut ctx = RequestCtx::root(&gen);
            let resp = call_and_absorb(&endpoint, US, &mut ctx, 42).await;
            // The caller's lineage now carries the server-side write.
            assert!(ctx
                .current()
                .unwrap()
                .contains(&WriteId::new("posts", "p42", 1)));
            resp
        });
        assert_eq!(resp, "stored p42");
        // Cross-region call: two hops (~45 ms each) plus a service step.
        let elapsed = sim.now().as_secs_f64();
        assert!((0.05..0.3).contains(&elapsed), "RPC took {elapsed}s");
    }

    #[test]
    fn server_sees_caller_lineage() {
        let (sim, rt) = setup();
        let svc = Service::new(&sim, ServiceSpec::new("notifier", EU));
        let endpoint = Endpoint::new(&rt, svc, |(): (), ctx: RequestCtx| async move {
            let carries = ctx
                .current()
                .map(|l| l.contains(&WriteId::new("posts", "p1", 3)))
                .unwrap_or(false);
            (carries, ctx)
        });
        let saw = sim.block_on(async move {
            let gen = LineageIdGen::new(1);
            let mut ctx = RequestCtx::root(&gen);
            ctx.lineage.append(WriteId::new("posts", "p1", 3));
            let (saw, _) = endpoint.call_from(EU, &ctx, ()).await;
            saw
        });
        assert!(saw, "the lineage must ride the request baggage");
    }

    #[test]
    fn endpoint_queues_under_load() {
        let (sim, rt) = setup();
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", EU)
                .workers(1)
                .service_time(antipode_sim::Dist::constant_ms(10.0)),
        );
        let endpoint = Endpoint::new(&rt, svc, |(): (), ctx: RequestCtx| async move { ((), ctx) });
        for _ in 0..5 {
            let e = endpoint.clone();
            sim.spawn(async move {
                let ctx = RequestCtx::default();
                e.call_from(EU, &ctx, ()).await;
            });
        }
        sim.run();
        // One worker, 10ms per call: at least 50ms of serialized service.
        assert!(sim.now().since(antipode_sim::SimTime::ZERO) >= Duration::from_millis(50));
    }
}

//! Typed RPC endpoints with automatic lineage propagation (paper §6.2:
//! "Services must include their lineages with all RPC requests and
//! responses").
//!
//! An [`Endpoint`] couples a [`Service`] (worker pool + service time) with a
//! handler. [`Endpoint::call`] performs the full client-side protocol:
//! inject the caller's lineage into outgoing baggage, transit the network,
//! queue for a worker, run the handler under the server-side
//! [`RequestCtx`], transit back, and absorb the (possibly extended) lineage
//! from the response — so shim writes inside handlers flow back to callers
//! without any manual bookkeeping.
//!
//! Endpoints can additionally be armed against the chaos plane: a
//! per-attempt timeout ([`Endpoint::with_timeout`]), exponential backoff
//! with deterministic jitter between retries ([`RetryPolicy`]), and a
//! [`CircuitBreaker`] that sheds load while a callee is crashed or
//! partitioned away. [`Endpoint::try_call_from`] runs the full
//! timeout/retry/breaker protocol; the plain [`Endpoint::call_from`] stays
//! fire-and-wait.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::time::Duration;

use antipode_lineage::Baggage;
use antipode_sim::rng::SimRng;
use antipode_sim::{timeout, SimTime};
use rand::Rng;

use crate::request::RequestCtx;
use crate::runtime::Runtime;
use crate::service::Service;

type BoxFut<T> = Pin<Box<dyn Future<Output = T>>>;
type Handler<Req, Resp> = dyn Fn(Req, RequestCtx) -> BoxFut<(Resp, RequestCtx)>;

/// Why a [`Endpoint::try_call_from`] gave up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// Every attempt hit the per-attempt timeout.
    Timeout {
        /// Number of attempts made before giving up.
        attempts: u32,
    },
    /// The circuit breaker is open: the call was shed without hitting the
    /// network.
    CircuitOpen,
    /// The callee reported itself overloaded (its queue is past the
    /// [`crate::service::ServiceSpec::queue_limit`] bound) on every attempt:
    /// the call was shed instead of deepening the backlog.
    Overloaded,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout { attempts } => {
                write!(f, "rpc timed out after {attempts} attempt(s)")
            }
            RpcError::CircuitOpen => write!(f, "circuit breaker open"),
            RpcError::Overloaded => write!(f, "callee overloaded, call shed"),
        }
    }
}

impl std::error::Error for RpcError {}

/// Exponential backoff with deterministic jitter between RPC attempts.
///
/// Attempt `n` (0-based) sleeps `base * multiplier^n`, capped at `max`, then
/// scaled by a jitter factor drawn uniformly from `[1 - jitter, 1 + jitter]`
/// out of the endpoint's named RNG stream — so schedules are fully
/// reproducible from the simulation seed while still decorrelating retry
/// storms.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max: Duration,
    /// Relative jitter amplitude in `[0, 1]`; 0 disables jitter.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(100),
            multiplier: 2.0,
            max: Duration::from_secs(5),
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retrying after (0-based) failed attempt `attempt`.
    pub fn backoff<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> Duration {
        let exp = self.base.as_secs_f64() * self.multiplier.max(1.0).powi(attempt as i32);
        let capped = exp.min(self.max.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        let factor = if jitter > 0.0 {
            1.0 + jitter * (2.0 * rng.random::<f64>() - 1.0)
        } else {
            1.0
        };
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// Breaker tuning.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before letting a probe through.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
        }
    }
}

/// Breaker state (classic three-state machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are shed until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe class of calls is let through; success
    /// closes, failure re-opens.
    HalfOpen,
}

struct BreakerInner {
    config: BreakerConfig,
    state: Cell<BreakerState>,
    failures: Cell<u32>,
    opened_at: Cell<SimTime>,
}

/// A shared circuit breaker. Cheap to clone; clones observe the same state,
/// so several endpoints targeting the same callee can share one breaker.
#[derive(Clone)]
pub struct CircuitBreaker {
    inner: Rc<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            inner: Rc::new(BreakerInner {
                config,
                state: Cell::new(BreakerState::Closed),
                failures: Cell::new(0),
                opened_at: Cell::new(SimTime::ZERO),
            }),
        }
    }

    /// Current state (after any cooldown transition driven by `allow`).
    pub fn state(&self) -> BreakerState {
        self.inner.state.get()
    }

    /// Whether a call may proceed at virtual time `now`. An open breaker
    /// whose cooldown has elapsed transitions to half-open and admits the
    /// probe.
    pub fn allow(&self, now: SimTime) -> bool {
        match self.inner.state.get() {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now.since(self.inner.opened_at.get()) >= self.inner.config.cooldown {
                    self.inner.state.set(BreakerState::HalfOpen);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: closes the breaker and resets the count.
    pub fn record_success(&self) {
        self.inner.state.set(BreakerState::Closed);
        self.inner.failures.set(0);
    }

    /// Records a failed call at virtual time `now`; trips the breaker open
    /// at the configured threshold (immediately, when half-open).
    pub fn record_failure(&self, now: SimTime) {
        match self.inner.state.get() {
            BreakerState::HalfOpen => {
                self.inner.state.set(BreakerState::Open);
                self.inner.opened_at.set(now);
            }
            BreakerState::Closed => {
                let n = self.inner.failures.get() + 1;
                self.inner.failures.set(n);
                if n >= self.inner.config.failure_threshold.max(1) {
                    self.inner.state.set(BreakerState::Open);
                    self.inner.opened_at.set(now);
                }
            }
            BreakerState::Open => {}
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::default())
    }
}

/// A callable service endpoint.
pub struct Endpoint<Req, Resp> {
    rt: Runtime,
    service: Service,
    handler: Rc<Handler<Req, Resp>>,
    timeout: Option<Duration>,
    retry: RetryPolicy,
    breaker: Option<CircuitBreaker>,
    rng: Rc<RefCell<SimRng>>,
    /// Responses of completed resumable requests, by request id. A
    /// re-delivered request whose original already finished returns the
    /// cached response instead of re-running the handler (exactly-once
    /// effects over at-least-once delivery).
    resume_cache: Rc<RefCell<std::collections::BTreeMap<u64, (Resp, Baggage)>>>,
    /// Resumable requests whose server task is currently running (possibly
    /// parked inside a crash window). Re-deliveries of these are suppressed.
    resume_inflight: Rc<RefCell<std::collections::BTreeSet<u64>>>,
    /// Notified whenever a resumable server task completes.
    resume_done: Rc<antipode_sim::sync::Notify>,
}

impl<Req, Resp> Clone for Endpoint<Req, Resp> {
    fn clone(&self) -> Self {
        Endpoint {
            rt: self.rt.clone(),
            service: self.service.clone(),
            handler: self.handler.clone(),
            timeout: self.timeout,
            retry: self.retry.clone(),
            breaker: self.breaker.clone(),
            rng: self.rng.clone(),
            resume_cache: self.resume_cache.clone(),
            resume_inflight: self.resume_inflight.clone(),
            resume_done: self.resume_done.clone(),
        }
    }
}

impl<Req: 'static, Resp: 'static> Endpoint<Req, Resp> {
    /// Creates an endpoint from a handler. The handler receives the request
    /// and the server-side [`RequestCtx`] (lineage extracted from the
    /// incoming baggage) and returns the response plus the (possibly
    /// updated) context.
    pub fn new<F, Fut>(rt: &Runtime, service: Service, handler: F) -> Self
    where
        F: Fn(Req, RequestCtx) -> Fut + 'static,
        Fut: Future<Output = (Resp, RequestCtx)> + 'static,
    {
        let rng = rt
            .sim()
            .rng(&format!("rpc:{}:{}", service.name(), service.region()));
        Endpoint {
            rt: rt.clone(),
            service,
            handler: Rc::new(move |req, ctx| Box::pin(handler(req, ctx)) as BoxFut<_>),
            timeout: None,
            retry: RetryPolicy::default(),
            breaker: None,
            rng: Rc::new(RefCell::new(rng)),
            resume_cache: Rc::new(RefCell::new(std::collections::BTreeMap::new())),
            resume_inflight: Rc::new(RefCell::new(std::collections::BTreeSet::new())),
            resume_done: Rc::new(antipode_sim::sync::Notify::new()),
        }
    }

    /// Sets a per-attempt deadline for [`Endpoint::try_call_from`]. An
    /// attempt that exceeds it is abandoned (the in-flight request future is
    /// dropped) and retried per the [`RetryPolicy`].
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = Some(t);
        self
    }

    /// Sets the retry/backoff policy for [`Endpoint::try_call_from`].
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a circuit breaker. Pass a clone of a shared breaker to
    /// coordinate shedding across several endpoints of the same callee.
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Calls the endpoint from `ctx` (whose lineage rides the request and is
    /// extended by whatever the handler wrote).
    pub async fn call(&self, caller: &RequestCtx, req: Req) -> (Resp, Baggage) {
        // The call must originate somewhere; we model the caller's region as
        // the callee's for intra-deployment calls unless overridden by
        // call_from.
        self.call_from(self.service.region(), caller, req).await
    }

    /// Like [`Endpoint::call`], with an explicit caller region (pays the
    /// inter-region transit both ways).
    pub async fn call_from(
        &self,
        from: antipode_sim::Region,
        caller: &RequestCtx,
        req: Req,
    ) -> (Resp, Baggage) {
        let outgoing = caller.outgoing();
        self.rt.hop(from, self.service.region()).await;
        // Queue for a worker and execute the handler under the server ctx.
        self.service.process().await;
        let server_ctx = RequestCtx::from_baggage(outgoing);
        let (resp, server_ctx) = (self.handler)(req, server_ctx).await;
        let response_baggage = server_ctx.outgoing();
        self.rt.hop(self.service.region(), from).await;
        (resp, response_baggage)
    }

    /// The underlying service.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Rolls back the resumable-call record of `request_id`, forgetting the
    /// cached response so the next [`Endpoint::call_resumable`] with the
    /// same id re-runs the handler — the redelivery half of the speculation
    /// plane's violation path. The exactly-once dedup machinery is reused
    /// as-is: after the rollback, redelivery is indistinguishable from a
    /// first delivery.
    ///
    /// Only call this when the original execution's effects were confined
    /// and discarded (a violated speculation): rolling back a request whose
    /// effects escaped would re-apply them on redelivery. A request whose
    /// server task is still in flight cannot be rolled back — the handler
    /// has not produced its (confined) effects yet — so this returns `false`
    /// and the caller should await completion first. Returns whether a
    /// cached response was forgotten.
    pub fn rollback_resumable(&self, request_id: u64) -> bool {
        if self.resume_inflight.borrow().contains(&request_id) {
            return false;
        }
        let removed = self.resume_cache.borrow_mut().remove(&request_id).is_some();
        if removed {
            // Waiter-cancellation discipline: anyone parked on the resume
            // notify must re-check the cache, find the entry gone, and
            // redeliver rather than sleep on a record that no longer exists.
            self.resume_done.notify_all();
        }
        removed
    }
}

impl<Req: Clone + 'static, Resp: 'static> Endpoint<Req, Resp> {
    /// Like [`Endpoint::try_call_from`] with the callee's own region as the
    /// caller region.
    pub async fn try_call(
        &self,
        caller: &RequestCtx,
        req: Req,
    ) -> Result<(Resp, Baggage), RpcError> {
        self.try_call_from(self.service.region(), caller, req).await
    }

    /// Calls the endpoint with the full resilience protocol: the circuit
    /// breaker is consulted first, then up to `retry.max_attempts` attempts
    /// race the per-attempt timeout, sleeping an exponential-backoff gap
    /// (deterministic jitter) between attempts. Successes and timeouts feed
    /// the breaker. Without a configured timeout this is a single plain
    /// [`Endpoint::call_from`].
    pub async fn try_call_from(
        &self,
        from: antipode_sim::Region,
        caller: &RequestCtx,
        req: Req,
    ) -> Result<(Resp, Baggage), RpcError> {
        let sim = self.rt.sim().clone();
        if let Some(b) = &self.breaker {
            if !b.allow(sim.now()) {
                return Err(RpcError::CircuitOpen);
            }
        }
        let attempts = self.retry.max_attempts.max(1);
        for attempt in 0..attempts {
            // Load shedding: an overloaded callee rejects at the door. The
            // rejection counts as a breaker failure and is retried with
            // backoff — by the next attempt the backlog may have drained.
            if self.service.overloaded() {
                if let Some(b) = &self.breaker {
                    b.record_failure(sim.now());
                }
                if attempt + 1 >= attempts {
                    return Err(RpcError::Overloaded);
                }
                let gap = {
                    let mut rng = self.rng.borrow_mut();
                    self.retry.backoff(attempt, &mut *rng)
                };
                sim.sleep(gap).await;
                continue;
            }
            let outcome = match self.timeout {
                Some(t) => timeout(&sim, t, self.call_from(from, caller, req.clone())).await,
                None => Ok(self.call_from(from, caller, req.clone()).await),
            };
            match outcome {
                Ok(out) => {
                    if let Some(b) = &self.breaker {
                        b.record_success();
                    }
                    return Ok(out);
                }
                Err(_elapsed) => {
                    if let Some(b) = &self.breaker {
                        b.record_failure(sim.now());
                    }
                    if attempt + 1 >= attempts {
                        return Err(RpcError::Timeout { attempts });
                    }
                    let gap = {
                        let mut rng = self.rng.borrow_mut();
                        self.retry.backoff(attempt, &mut *rng)
                    };
                    sim.sleep(gap).await;
                    if let Some(b) = &self.breaker {
                        if !b.allow(sim.now()) {
                            return Err(RpcError::CircuitOpen);
                        }
                    }
                }
            }
        }
        unreachable!("loop returns on the final attempt")
    }
}

impl<Req: Clone + 'static, Resp: Clone + 'static> Endpoint<Req, Resp> {
    /// Restart-and-resume call: survives callee crash-restart windows with
    /// exactly-once handler effects.
    ///
    /// The request (with the caller's baggage riding it) is delivered to a
    /// *detached* server task; if the callee is inside a
    /// [`antipode_sim::FaultKind::ServiceCrash`] window the task parks until
    /// the service restarts, then runs the handler. The client re-delivers
    /// after each patience interval (the endpoint's per-attempt timeout, or
    /// 1 s) — but re-deliveries of a request that is still in flight are
    /// suppressed, and re-deliveries of one that already completed return
    /// the cached response without re-running the handler. `request_id`
    /// identifies the logical request across deliveries (deduplication key,
    /// like a WriteId for RPC effects); callers must not reuse ids.
    pub async fn call_resumable(
        &self,
        from: antipode_sim::Region,
        caller: &RequestCtx,
        request_id: u64,
        req: Req,
    ) -> (Resp, Baggage) {
        let sim = self.rt.sim().clone();
        let patience = self.timeout.unwrap_or(Duration::from_secs(1));
        loop {
            // Completed (by this delivery or an earlier one): pay the return
            // hop and hand back the cached response.
            let cached = self.resume_cache.borrow().get(&request_id).cloned();
            if let Some((resp, baggage)) = cached {
                self.rt.hop(self.service.region(), from).await;
                return (resp, baggage);
            }
            // (Re-)deliver: pay the forward hop, then start the server task
            // unless a previous delivery of this request is still running.
            self.rt.hop(from, self.service.region()).await;
            let notified = self.resume_done.notified();
            let start_server = {
                let cached = self.resume_cache.borrow().contains_key(&request_id);
                let mut inflight = self.resume_inflight.borrow_mut();
                !cached && inflight.insert(request_id)
            };
            if start_server {
                let this = self.clone();
                let outgoing = caller.outgoing();
                let req = req.clone();
                sim.clone().spawn(async move {
                    // `process` parks through crash windows: the restarted
                    // service picks the request back up with its baggage
                    // intact and runs the handler exactly once.
                    this.service.process().await;
                    let server_ctx = RequestCtx::from_baggage(outgoing);
                    let (resp, server_ctx) = (this.handler)(req, server_ctx).await;
                    let baggage = server_ctx.outgoing();
                    this.resume_cache
                        .borrow_mut()
                        .insert(request_id, (resp, baggage));
                    this.resume_inflight.borrow_mut().remove(&request_id);
                    this.resume_done.notify_all();
                });
            }
            // Wait for a completion signal, at most one patience interval,
            // then loop: either return the now-cached response or re-deliver.
            let _ = timeout(&sim, patience, notified).await;
        }
    }
}

/// Convenience: call and absorb the response lineage into the caller's
/// context in one step (the common client pattern).
pub async fn call_and_absorb<Req: 'static, Resp: 'static>(
    endpoint: &Endpoint<Req, Resp>,
    from: antipode_sim::Region,
    ctx: &mut RequestCtx,
    req: Req,
) -> Resp {
    let (resp, baggage) = endpoint.call_from(from, ctx, req).await;
    ctx.absorb_response(&baggage);
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceSpec;
    use antipode::LineageIdGen;
    use antipode_lineage::WriteId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::time::Duration;

    fn setup() -> (Sim, Runtime) {
        let sim = Sim::new(0x49C);
        let rt = Runtime::new(&sim, Rc::new(Network::global_triangle()));
        (sim, rt)
    }

    #[test]
    fn call_round_trips_and_extends_lineage() {
        let (sim, rt) = setup();
        let svc = Service::new(&sim, ServiceSpec::new("post-storage", EU));
        // Handler performs a (simulated) shim write: appends to the lineage.
        let endpoint = Endpoint::new(&rt, svc, |post_id: u64, mut ctx: RequestCtx| async move {
            ctx.lineage
                .append(WriteId::new("posts", format!("p{post_id}"), 1));
            (format!("stored p{post_id}"), ctx)
        });
        let resp = sim.block_on(async move {
            let gen = LineageIdGen::new(1);
            let mut ctx = RequestCtx::root(&gen);
            let resp = call_and_absorb(&endpoint, US, &mut ctx, 42).await;
            // The caller's lineage now carries the server-side write.
            assert!(ctx
                .current()
                .unwrap()
                .contains(&WriteId::new("posts", "p42", 1)));
            resp
        });
        assert_eq!(resp, "stored p42");
        // Cross-region call: two hops (~45 ms each) plus a service step.
        let elapsed = sim.now().as_secs_f64();
        assert!((0.05..0.3).contains(&elapsed), "RPC took {elapsed}s");
    }

    #[test]
    fn server_sees_caller_lineage() {
        let (sim, rt) = setup();
        let svc = Service::new(&sim, ServiceSpec::new("notifier", EU));
        let endpoint = Endpoint::new(&rt, svc, |(): (), ctx: RequestCtx| async move {
            let carries = ctx
                .current()
                .map(|l| l.contains(&WriteId::new("posts", "p1", 3)))
                .unwrap_or(false);
            (carries, ctx)
        });
        let saw = sim.block_on(async move {
            let gen = LineageIdGen::new(1);
            let mut ctx = RequestCtx::root(&gen);
            ctx.lineage.append(WriteId::new("posts", "p1", 3));
            let (saw, _) = endpoint.call_from(EU, &ctx, ()).await;
            saw
        });
        assert!(saw, "the lineage must ride the request baggage");
    }

    #[test]
    fn endpoint_queues_under_load() {
        let (sim, rt) = setup();
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", EU)
                .workers(1)
                .service_time(antipode_sim::Dist::constant_ms(10.0)),
        );
        let endpoint = Endpoint::new(&rt, svc, |(): (), ctx: RequestCtx| async move { ((), ctx) });
        for _ in 0..5 {
            let e = endpoint.clone();
            sim.spawn(async move {
                let ctx = RequestCtx::default();
                e.call_from(EU, &ctx, ()).await;
            });
        }
        sim.run();
        // One worker, 10ms per call: at least 50ms of serialized service.
        assert!(sim.now().since(antipode_sim::SimTime::ZERO) >= Duration::from_millis(50));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(100),
            multiplier: 2.0,
            max: Duration::from_secs(1),
            jitter: 0.0,
        };
        let sim = Sim::new(7);
        let mut rng = sim.rng("t");
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(100));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(200));
        assert_eq!(policy.backoff(2, &mut rng), Duration::from_millis(400));
        // 100ms * 2^6 = 6.4s, capped at 1s.
        assert_eq!(policy.backoff(6, &mut rng), Duration::from_secs(1));
    }

    #[test]
    fn jittered_backoff_stays_within_band() {
        let policy = RetryPolicy {
            jitter: 0.25,
            ..RetryPolicy::default()
        };
        let sim = Sim::new(8);
        let mut rng = sim.rng("t");
        for _ in 0..200 {
            let d = policy.backoff(0, &mut rng).as_secs_f64();
            assert!((0.075..=0.125).contains(&d), "jittered backoff {d}s");
        }
    }

    #[test]
    fn breaker_trips_cools_down_and_probes() {
        use antipode_sim::SimTime;
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(5),
        });
        let t0 = SimTime::ZERO;
        assert!(b.allow(t0));
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t0);
        assert_eq!(b.state(), BreakerState::Open);
        // Still cooling down at t=4s.
        assert!(!b.allow(SimTime::from_secs(4)));
        // Cooldown elapsed: a probe is admitted (half-open).
        assert!(b.allow(SimTime::from_secs(5)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A half-open failure re-opens immediately.
        b.record_failure(SimTime::from_secs(5));
        assert_eq!(b.state(), BreakerState::Open);
        // A later successful probe closes it.
        assert!(b.allow(SimTime::from_secs(11)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn overloaded_endpoint_sheds_calls() {
        let (sim, rt) = setup();
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", EU)
                .workers(1)
                .queue_limit(1)
                .service_time(antipode_sim::Dist::constant_ms(500.0)),
        );
        let endpoint = Endpoint::new(&rt, svc, |(): (), ctx: RequestCtx| async move { ((), ctx) })
            .with_retry(RetryPolicy {
                max_attempts: 2,
                jitter: 0.0,
                ..RetryPolicy::default()
            });
        // Saturate the single worker: one call in service, three queued.
        for _ in 0..4 {
            let e = endpoint.clone();
            sim.spawn(async move {
                let ctx = RequestCtx::default();
                e.call_from(EU, &ctx, ()).await;
            });
        }
        sim.block_on({
            let sim = sim.clone();
            let endpoint = endpoint.clone();
            async move {
                sim.sleep(Duration::from_millis(50)).await;
                assert!(endpoint.service().overloaded());
                let err = endpoint
                    .try_call_from(EU, &ctx_default(), ())
                    .await
                    .unwrap_err();
                assert_eq!(err, RpcError::Overloaded, "both attempts hit the bound");
            }
        });
        // Once the backlog drains, the same endpoint admits calls again.
        sim.run();
        sim.block_on(async move {
            endpoint
                .try_call_from(EU, &ctx_default(), ())
                .await
                .expect("drained service accepts calls");
        });
    }

    fn ctx_default() -> RequestCtx {
        RequestCtx::default()
    }

    #[test]
    fn resumable_call_survives_crash_with_exactly_once_effects() {
        use antipode_sim::{FaultKind, SimTime};
        use std::cell::Cell;
        let (sim, rt) = setup();
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", EU).service_time(antipode_sim::Dist::constant_ms(1.0)),
        );
        // The service is crashed for the first 10 virtual seconds; the
        // 1s-patience client re-delivers ~10 times into the window.
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(10),
            FaultKind::ServiceCrash {
                service: "api".into(),
            },
        );
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let endpoint = Endpoint::new(&rt, svc, move |(): (), mut ctx: RequestCtx| {
            c.set(c.get() + 1);
            async move {
                ctx.lineage.append(WriteId::new("posts", "p1", 1));
                ("done", ctx)
            }
        })
        .with_timeout(Duration::from_secs(1));
        let e2 = endpoint.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                let gen = LineageIdGen::new(1);
                let mut ctx = RequestCtx::root(&gen);
                let (resp, baggage) = e2.call_resumable(EU, &ctx, 7, ()).await;
                assert_eq!(resp, "done");
                // The restarted service processed the original baggage: the
                // handler's shim write rides the response lineage.
                ctx.absorb_response(&baggage);
                assert!(ctx
                    .current()
                    .unwrap()
                    .contains(&WriteId::new("posts", "p1", 1)));
                assert!(
                    sim.now() >= SimTime::from_secs(10),
                    "the response waited for the restart"
                );
            }
        });
        assert_eq!(
            count.get(),
            1,
            "re-deliveries must not duplicate handler effects"
        );
        // A re-delivery of the same request id after completion returns the
        // cached response without re-running the handler.
        sim.block_on(async move {
            let ctx = RequestCtx::default();
            let (resp, _) = endpoint.call_resumable(EU, &ctx, 7, ()).await;
            assert_eq!(resp, "done");
        });
        assert_eq!(count.get(), 1);
    }

    /// Speculation-plane redelivery: after a rollback the same request id
    /// re-runs the handler exactly once more, while an in-flight request
    /// refuses the rollback.
    #[test]
    fn rollback_resumable_forgets_the_response_and_redelivers() {
        use std::cell::Cell;
        let (sim, rt) = setup();
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", EU).service_time(antipode_sim::Dist::constant_ms(1.0)),
        );
        let count = Rc::new(Cell::new(0u32));
        let c = count.clone();
        let endpoint = Endpoint::new(&rt, svc, move |(): (), ctx: RequestCtx| {
            c.set(c.get() + 1);
            async move { ("done", ctx) }
        });
        let e2 = endpoint.clone();
        sim.block_on(async move {
            let ctx = RequestCtx::default();
            // Unknown ids roll back to nothing.
            assert!(!e2.rollback_resumable(7));
            let (resp, _) = e2.call_resumable(EU, &ctx, 7, ()).await;
            assert_eq!(resp, "done");
            // Cached: a redelivery does not re-run the handler…
            let _ = e2.call_resumable(EU, &ctx, 7, ()).await;
            // …until the speculation violates and the record is rolled back.
            assert!(e2.rollback_resumable(7));
            assert!(!e2.rollback_resumable(7), "rollback is idempotent");
            let (resp, _) = e2.call_resumable(EU, &ctx, 7, ()).await;
            assert_eq!(resp, "done");
        });
        assert_eq!(
            count.get(),
            2,
            "one original run plus exactly one post-rollback redelivery"
        );
    }

    #[test]
    fn rollback_resumable_refuses_inflight_requests() {
        use antipode_sim::{FaultKind, SimTime};
        let (sim, rt) = setup();
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", EU).service_time(antipode_sim::Dist::constant_ms(1.0)),
        );
        // Crash window parks the server task: the request stays in flight.
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(10),
            FaultKind::ServiceCrash {
                service: "api".into(),
            },
        );
        let endpoint = Endpoint::new(
            &rt,
            svc,
            |(): (), ctx: RequestCtx| async move { ("done", ctx) },
        )
        .with_timeout(Duration::from_secs(1));
        let e2 = endpoint.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let ctx = RequestCtx::default();
            let _ = e2.call_resumable(EU, &ctx, 9, ()).await;
        });
        let e3 = endpoint.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_secs(5)).await;
            // Mid-crash the server task is parked but in flight: the
            // rollback must refuse rather than tear out the dedup record.
            assert!(!e3.rollback_resumable(9));
        });
        sim.run();
        // Once complete, the rollback succeeds.
        assert!(endpoint.rollback_resumable(9));
    }

    #[test]
    fn try_call_times_out_during_crash_and_recovers() {
        use antipode_sim::{FaultKind, SimTime};
        let (sim, rt) = setup();
        let svc = Service::new(
            &sim,
            ServiceSpec::new("api", EU).service_time(antipode_sim::Dist::constant_ms(1.0)),
        );
        // Crash the service for virtual seconds [0, 30).
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::ServiceCrash {
                service: "api".into(),
            },
        );
        let endpoint = Endpoint::new(&rt, svc, |(): (), ctx: RequestCtx| async move { ((), ctx) })
            .with_timeout(Duration::from_secs(1))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                jitter: 0.0,
                ..RetryPolicy::default()
            });
        sim.block_on({
            let sim = sim.clone();
            async move {
                let ctx = RequestCtx::default();
                let err = endpoint.try_call_from(EU, &ctx, ()).await.unwrap_err();
                assert_eq!(err, RpcError::Timeout { attempts: 3 });
                // Wait out the crash window; the same endpoint then succeeds.
                sim.sleep(Duration::from_secs(60).saturating_sub(sim.now().since(SimTime::ZERO)))
                    .await;
                endpoint
                    .try_call_from(EU, &ctx, ())
                    .await
                    .expect("healed service answers");
            }
        });
    }
}

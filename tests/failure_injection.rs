//! Failure-injection tests: replication message drops, paused replicas,
//! congestion episodes, and how Antipode behaves under them. A barrier must
//! never return early — it either waits out the fault or times out with an
//! accurate report.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, BarrierError};
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use antipode_store::QueueStore;
use bytes::Bytes;

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(200.0),
    }
}

fn setup() -> (Sim, KvStore, KvShim, Antipode) {
    let sim = Sim::new(0xFA17);
    let net = Rc::new(Network::global_triangle());
    let store = KvStore::new(&sim, net, "db", &[EU, US], fast_profile());
    let shim = KvShim::new(store.clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));
    (sim, store, shim, ap)
}

#[test]
fn barrier_rides_out_dropped_replication() {
    let (sim, store, shim, ap) = setup();
    store.set_drop_probability(0.95); // almost everything dropped, retried
    let blocked = sim.clone().block_on(async move {
        let mut l = Lineage::new(LineageId(1));
        shim.write(EU, "k", Bytes::from_static(b"v"), &mut l)
            .await
            .unwrap();
        let report = ap.barrier(&l, US).await.unwrap();
        report.blocked
    });
    // Retries every 200ms: the wait is long but finite, and correct.
    assert!(blocked >= Duration::from_millis(100), "blocked {blocked:?}");
    assert!(store.get_sync(US, "k").is_some());
}

#[test]
fn barrier_waits_through_a_paused_replica_until_resume() {
    let (sim, store, shim, ap) = setup();
    store.pause_replication(US);
    let store2 = store.clone();
    let sim2 = sim.clone();
    sim.spawn(async move {
        sim2.sleep(Duration::from_secs(30)).await;
        store2.resume_replication(US);
    });
    let blocked = sim.clone().block_on(async move {
        let mut l = Lineage::new(LineageId(1));
        shim.write(EU, "k", Bytes::from_static(b"v"), &mut l)
            .await
            .unwrap();
        ap.barrier(&l, US).await.unwrap().blocked
    });
    assert!(
        blocked >= Duration::from_secs(29),
        "stall must be waited out: {blocked:?}"
    );
}

#[test]
fn barrier_timeout_during_stall_reports_unmet_then_recovers() {
    let (sim, store, shim, ap) = setup();
    store.pause_replication(US);
    let shim2 = shim.clone();
    let ap2 = ap.clone();
    let lineage = sim.clone().block_on(async move {
        let mut l = Lineage::new(LineageId(1));
        shim2
            .write(EU, "k", Bytes::from_static(b"v"), &mut l)
            .await
            .unwrap();
        let err = ap2
            .barrier_with_timeout(&l, US, Duration::from_secs(5))
            .await
            .unwrap_err();
        match err {
            BarrierError::Timeout { unmet } => assert_eq!(unmet.len(), 1),
            other => panic!("expected timeout, got {other}"),
        }
        l
    });
    // After the fault clears, the same barrier succeeds.
    store.resume_replication(US);
    sim.clone().block_on(async move {
        ap.barrier(&lineage, US).await.unwrap();
    });
}

#[test]
fn congestion_episode_delays_but_never_corrupts() {
    let (sim, store, shim, ap) = setup();
    store.set_extra_replication_lag(Some(Dist::Constant(10.0)));
    let sim2 = sim.clone();
    let (blocked, value_ok) = sim.clone().block_on(async move {
        let mut l = Lineage::new(LineageId(1));
        shim.write(EU, "k", Bytes::from_static(b"congested"), &mut l)
            .await
            .unwrap();
        let report = ap.barrier(&l, US).await.unwrap();
        let (data, _) = shim
            .read(US, "k")
            .await
            .unwrap()
            .expect("visible after barrier");
        let _ = sim2.now();
        (report.blocked, data == Bytes::from_static(b"congested"))
    });
    assert!(blocked >= Duration::from_secs(10));
    assert!(value_ok);
}

#[test]
fn queue_pause_stalls_consumers_but_not_publishers() {
    let sim = Sim::new(0xFA18);
    let net = Rc::new(Network::global_triangle());
    let q = QueueStore::new(&sim, net, "q", &[EU, US], Default::default());
    q.pause_delivery(US);
    let q2 = q.clone();
    // Publisher proceeds immediately (asynchronous delivery).
    let id = sim
        .clone()
        .block_on(async move { q2.publish(EU, Bytes::new()).await.unwrap() });
    sim.run_for(Duration::from_secs(10));
    assert!(!q.is_visible(US, id), "paused delivery must not land");
    assert!(q.is_visible(EU, id), "local delivery unaffected");
    q.resume_delivery(US);
    sim.run_for(Duration::from_secs(5));
    assert!(q.is_visible(US, id));
}

#[test]
fn broker_outage_mid_fanout_stalls_delivery_until_heal() {
    use antipode_sim::{FaultKind, SimTime};
    let sim = Sim::new(0xFA19);
    let net = Rc::new(Network::global_triangle());
    let q = QueueStore::new(&sim, net, "q", &[EU, US], Default::default());
    // The broker goes down just after the publish commits and stays down
    // for 20 virtual seconds: the fan-out is caught mid-flight.
    sim.faults().schedule(
        SimTime::from_millis(1),
        SimTime::from_secs(20),
        FaultKind::QueueOutage { broker: "q".into() },
    );
    let q2 = q.clone();
    let id = sim
        .clone()
        .block_on(async move { q2.publish(EU, Bytes::from_static(b"m")).await.unwrap() });
    sim.run_for(Duration::from_secs(10));
    assert!(
        !q.is_visible(US, id) && !q.is_visible(EU, id),
        "no delivery lands during the outage"
    );
    sim.run_for(Duration::from_secs(15));
    assert!(q.is_visible(EU, id), "local delivery after heal");
    assert!(q.is_visible(US, id), "remote delivery after heal");
}

#[test]
fn dropped_deliveries_are_redelivered() {
    let sim = Sim::new(0xFA20);
    let net = Rc::new(Network::global_triangle());
    let q = QueueStore::new(&sim, net, "q", &[EU, US], Default::default());
    q.set_delivery_drop_probability(0.8);
    q.set_redelivery_interval(Dist::constant_ms(50.0));
    let q2 = q.clone();
    sim.clone().block_on(async move {
        let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
        // At-least-once: despite an 80% per-attempt drop rate, redelivery
        // retries until every region has the message.
        q2.wait_visible(US, id).await.unwrap();
        q2.wait_visible(EU, id).await.unwrap();
        assert!(q2.is_visible(US, id));
    });
}

#[test]
fn consumer_crash_redelivers_to_group_and_ack_wait_resolves() {
    let sim = Sim::new(0xFA21);
    let net = Rc::new(Network::global_triangle());
    let q = QueueStore::new(&sim, net, "q", &[EU, US], Default::default());
    q.set_visibility_timeout(Some(Duration::from_secs(2)));
    let q2 = q.clone();
    let sim2 = sim.clone();
    sim.clone().block_on(async move {
        let sim = sim2;
        // The group must exist before delivery for the message to queue up.
        let crashed = q2.join_group(US, "workers").unwrap();
        let id = q2.publish(EU, Bytes::from_static(b"job")).await.unwrap();
        q2.wait_visible(US, id).await.unwrap();
        // Consumer 1 takes the message and crashes before acking.
        let taken = crashed.take().await;
        assert_eq!(taken.id, id);
        drop(crashed); // never acks
                       // Consumer 2 joins the same group; the visibility timeout fires and
                       // the unacked message is redelivered to it.
        let survivor = q2.join_group(US, "workers").unwrap();
        let redelivered = survivor.take().await;
        assert_eq!(redelivered.id, id, "unacked message is redelivered");
        assert!(
            sim.now().since(antipode_sim::SimTime::ZERO) >= Duration::from_secs(2),
            "redelivery waits out the visibility timeout"
        );
        survivor.ack(&redelivered).unwrap();
        // Processed-semantics waiters unblock only now.
        q2.wait_acked(US, id).await.unwrap();
    });
}

#[test]
fn supersession_satisfies_waits_during_faults() {
    // Version 1's replication is lost forever? No — but even if v1 arrives
    // after v2, waiting on v1 is satisfied by v2 (§5.2 "superseded").
    let (sim, store, shim, ap) = setup();
    let (v1_lineage, _) = sim.clone().block_on({
        let shim = shim.clone();
        async move {
            let mut l1 = Lineage::new(LineageId(1));
            shim.write(EU, "k", Bytes::from_static(b"one"), &mut l1)
                .await
                .unwrap();
            let mut l2 = Lineage::new(LineageId(2));
            shim.write(EU, "k", Bytes::from_static(b"two"), &mut l2)
                .await
                .unwrap();
            (l1, l2)
        }
    });
    sim.clone().block_on(async move {
        ap.barrier(&v1_lineage, US).await.unwrap();
    });
    let got = store.get_sync(US, "k").unwrap();
    assert!(
        got.version >= 1,
        "waiting on v1 is satisfied by v1 or any newer version"
    );
    let env = antipode_store::Envelope::decode(&got.bytes).unwrap();
    assert!(
        env.data == Bytes::from_static(b"one") || env.data == Bytes::from_static(b"two"),
        "the visible value is one of the two writes"
    );
}

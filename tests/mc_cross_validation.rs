//! Cross-validation of the systematic model checker against schedule
//! *sampling*: random schedules are the probabilistic cousin of exhaustive
//! exploration, so every violation a sampler stumbles into must already be
//! in the model checker's exhaustive findings — and any sampled violating
//! schedule must replay deterministically to the identical violation.

use antipode_mc::{run_cell, Counterexample, Explorer, Pruning, BARRIER_BASIC, BARRIER_REMOVED};
use antipode_sim::RandomSchedule;

const CELL_SEED: u64 = 1;

/// Samples one random schedule of the ablated cell; returns the recorded
/// choices and the outcome.
fn sample(schedule_seed: u64) -> (Vec<usize>, antipode_mc::CellOutcome) {
    let sched = RandomSchedule::new(schedule_seed);
    let taken = sched.taken();
    let outcome = run_cell(&BARRIER_REMOVED, CELL_SEED, Box::new(sched));
    let choices = taken.borrow().clone();
    (choices, outcome)
}

#[test]
fn sampled_violations_are_a_subset_of_mc_findings() {
    let report = Explorer::new().explore(&BARRIER_REMOVED, CELL_SEED);
    assert!(!report.violations.is_empty(), "ablation must violate");

    let mut violating_samples = 0;
    for schedule_seed in 0..50 {
        let (_, outcome) = sample(schedule_seed);
        assert!(outcome.completed, "sampling never aborts");
        for sig in &outcome.verdict.violations {
            violating_samples += 1;
            assert!(
                report.violations.contains(sig),
                "sampler (schedule seed {schedule_seed}) found a violation the \
                 exhaustive explorer missed: {sig}\nMC findings: {:?}",
                report.violations
            );
        }
        assert!(
            outcome.verdict.divergence.is_none(),
            "oracle divergence under sampling: {:?}",
            outcome.verdict.divergence
        );
    }
    // The race is real, so 50 random schedules must hit it at least once —
    // otherwise this test validates nothing.
    assert!(
        violating_samples > 0,
        "no random schedule violated; sampling exercised nothing"
    );
}

#[test]
fn sampled_counterexamples_replay_identically_twice() {
    let mut checked = 0;
    for schedule_seed in 0..50 {
        let (choices, outcome) = sample(schedule_seed);
        if !outcome.violated() {
            continue;
        }
        checked += 1;
        let cx = Counterexample::new("barrier_removed", CELL_SEED, choices);
        let first = cx.replay().expect("replayable");
        let second = cx.replay().expect("replayable");
        assert_eq!(
            first.verdict, outcome.verdict,
            "replay of schedule seed {schedule_seed} diverged from the sample"
        );
        assert_eq!(first.verdict, second.verdict, "replay is not deterministic");
        assert_eq!(first.trace, second.trace, "replay traces differ");
    }
    assert!(checked > 0, "no violating sample to replay");
}

#[test]
fn mc_counterexample_replays_on_the_barriered_cell_without_violation() {
    // The same adversarial schedule that breaks the ablated cell must be
    // harmless once the barrier is back: replaying the witness choices
    // against `barrier_basic` stays clean. (The two cells share their
    // concurrency structure, so the choice indices line up.)
    let report = Explorer::new().explore(&BARRIER_REMOVED, CELL_SEED);
    let cx = report.counterexample.expect("ablation yields a witness");
    let fixed = Counterexample::new("barrier_basic", CELL_SEED, cx.choices.clone());
    let out = fixed.replay().expect("replayable");
    assert!(out.completed);
    assert!(
        !out.violated(),
        "barrier failed to mask the adversarial schedule: {:?}",
        out.verdict.violations
    );
}

/// Exhaustive raw-mode sweep of both cells — minutes of re-executions, so
/// chaos-soak only: `cargo test --release -- --ignored mc_exhaustive`.
#[test]
#[ignore = "exhaustive raw-mode sweep; run in chaos-soak"]
fn mc_exhaustive_raw_sweep_agrees_with_reduction() {
    for spec in [BARRIER_BASIC, BARRIER_REMOVED] {
        let raw = Explorer::new()
            .pruning(Pruning::Raw)
            .explore(&spec, CELL_SEED);
        let reduced = Explorer::new().explore(&spec, CELL_SEED);
        assert!(raw.divergences.is_empty() && reduced.divergences.is_empty());
        assert_eq!(
            raw.violations, reduced.violations,
            "cell {}: reduction changed the violation set",
            spec.name
        );
        assert!(!raw.budget_exhausted && !reduced.budget_exhausted);
        // Sampling over many schedule seeds agrees with both.
        for schedule_seed in 0..500 {
            let sched = RandomSchedule::new(schedule_seed);
            let outcome = run_cell(&spec, CELL_SEED, Box::new(sched));
            for sig in &outcome.verdict.violations {
                assert!(raw.violations.contains(sig), "cell {}: {sig}", spec.name);
            }
        }
    }
}

//! Recovery-plane properties: for any randomized fault plan whose windows
//! all close — replica crashes, a region outage, partitions, replication
//! drops and stalls — the recovery plane (WAL crash-restart, hinted handoff,
//! anti-entropy repair) drives every committed write to every replica, every
//! barrier eventually completes (degrading and re-arming along the way), and
//! the passive checker observes zero XCY violations once the storm passes.
//!
//! The ablation test at the bottom runs the *same* harness with
//! [`RecoveryConfig::disabled`] and no anti-entropy, and demonstrates the
//! stack is then **not** eventually consistent: that contrast is the whole
//! point of the plane.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, BarrierOutcome, ConsistencyChecker};
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{FaultKind, Network, Region, Sim, SimTime};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use antipode_store::{RecoveryConfig, RepairConfig};
use bytes::Bytes;
use proptest::prelude::*;

const STORES: [&str; 3] = ["db-a", "db-b", "db-c"];
const REGIONS: [Region; 3] = [EU, US, SG];

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(200.0),
    }
}

/// Parameters of one randomized recovery scenario. Every window is bounded,
/// so the plan always heals; the property is that the stack then converges.
#[derive(Clone, Debug)]
struct RecoveryParams {
    seed: u64,
    /// Per-store `(start_ms, len_ms, region_index)` replica-crash window.
    crashes: [(u64, u64, u8); 3],
    /// `(start_ms, len_ms)` of a US region outage.
    outage: (u64, u64),
    /// `(start_ms, len_ms)` of a US↔EU partition.
    partition: (u64, u64),
    /// Per-store replication drop probability (active for the first 5 s).
    drops: (f64, f64, f64),
    /// Per-store replication stall into US, `[0, len_ms)`.
    stalls: (u64, u64, u64),
}

/// What one scenario produced.
#[derive(Debug)]
struct RecoveryOutcome {
    /// Every store's replicas hold identical key→version maps at quiescence.
    converged: bool,
    /// Suppressed sends still queued at quiescence (must be zero: every hint
    /// was either flushed or superseded by anti-entropy).
    pending_hints: usize,
    /// Times the mid-chaos budgeted barrier degraded before completing.
    rearms: usize,
    /// Unmet dependencies the checker saw after the post-storm barrier.
    violations: usize,
}

/// Builds the stack, injects the plan, runs the scenario to quiescence.
///
/// `recover` toggles the whole plane: on, each store keeps the default
/// [`RecoveryConfig`] (WAL + hinted handoff) and runs an anti-entropy loop;
/// off, stores get [`RecoveryConfig::disabled`] and no repair — the
/// ablation. The writer path and fault plan are identical either way.
fn run_recovery(p: &RecoveryParams, recover: bool) -> RecoveryOutcome {
    let sim = Sim::new(p.seed);
    let net = Rc::new(Network::global_triangle());
    let faults = sim.faults();
    faults.schedule(
        SimTime::from_millis(p.outage.0),
        SimTime::from_millis(p.outage.0 + p.outage.1),
        FaultKind::RegionOutage { region: US },
    );
    faults.schedule(
        SimTime::from_millis(p.partition.0),
        SimTime::from_millis(p.partition.0 + p.partition.1),
        FaultKind::Partition { a: EU, b: US },
    );
    let drops = [p.drops.0, p.drops.1, p.drops.2];
    let stalls = [p.stalls.0, p.stalls.1, p.stalls.2];
    let mut ap = Antipode::new(sim.clone());
    let mut shims = Vec::new();
    let mut stores = Vec::new();
    for (i, name) in STORES.iter().enumerate() {
        let (crash_start, crash_len, region_ix) = p.crashes[i];
        faults.schedule(
            SimTime::from_millis(crash_start),
            SimTime::from_millis(crash_start + crash_len),
            FaultKind::ReplicaCrash {
                store: name.to_string(),
                region: REGIONS[region_ix as usize % REGIONS.len()],
            },
        );
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::ReplicationDrop {
                store: name.to_string(),
                probability: drops[i],
            },
        );
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_millis(stalls[i]),
            FaultKind::ReplicationStall {
                store: name.to_string(),
                region: US,
            },
        );
        let store = KvStore::new(&sim, net.clone(), *name, &REGIONS, fast_profile());
        if recover {
            // Default RecoveryConfig (WAL + handoff) is already active; the
            // repair loop is the opt-in piece.
            store.enable_anti_entropy(RepairConfig {
                period: Duration::from_secs(1),
                horizon: Some(SimTime::from_secs(120)),
            });
        } else {
            store.set_recovery(RecoveryConfig::disabled());
        }
        let shim = KvShim::new(store.clone());
        ap.register(Rc::new(shim.clone()));
        shims.push(shim);
        stores.push(store);
    }
    let checker = ConsistencyChecker::new(ap.clone());
    let sim2 = sim.clone();
    let faults2 = faults.clone();
    let (rearms, violations) = sim.block_on(async move {
        let sim = sim2;
        let faults = faults2;
        // Writes land in EU at t ≈ 0, before any crash window opens (crash
        // starts are ≥ 500 ms), each appending to one shared lineage.
        let mut lineage = Lineage::new(LineageId(1));
        for shim in &shims {
            for key in ["k1", "k2"] {
                shim.write(EU, key, Bytes::from_static(b"v"), &mut lineage)
                    .await
                    .expect("EU is healthy while the writes land");
            }
        }
        if !recover {
            // Ablation: no barrier (it could block forever on a write the
            // disabled plane dropped); convergence is judged at quiescence.
            return (0usize, 0usize);
        }
        // Mid-chaos budgeted barrier: degrade as often as the plan forces,
        // re-arm the remainder each time, and require eventual completion.
        let mut rearms = 0usize;
        let budget = Duration::from_millis(500);
        let mut outcome = ap
            .barrier_budget(&lineage, US, budget)
            .await
            .expect("all stores are registered");
        while let BarrierOutcome::Degraded(d) = outcome {
            rearms += 1;
            assert!(
                rearms < 512,
                "budgeted barrier never completed: {} deps still unmet",
                d.unmet.len()
            );
            outcome = ap
                .rearm(&d, US, Some(budget))
                .await
                .expect("re-arming a degraded barrier is always safe");
        }
        // Let the plan play out fully: a later crash window may still wipe a
        // replica the barrier already observed (WAL replay restores it).
        let mut at = sim.now();
        while let Some(t) = faults.next_transition_after(at) {
            sim.sleep_until(t).await;
            at = t;
        }
        // Post-storm: one unbounded barrier, then the checker must agree
        // nothing is unmet — visibility is monotone once the plan heals.
        ap.barrier(&lineage, US)
            .await
            .expect("post-storm barrier completes");
        let dry = checker.checkpoint("reader:post-storm", &lineage, US);
        (rearms, dry.unmet.len())
    });
    // Quiescence: anti-entropy keeps sweeping until every replica converged
    // and every hint is flushed, then the loop (and the sim) stops itself.
    sim.run();
    RecoveryOutcome {
        converged: stores.iter().all(|s| s.converged()),
        pending_hints: stores.iter().map(|s| s.pending_hints()).sum(),
        rearms,
        violations,
    }
}

// splitmix64: cheap, deterministic parameter derivation for the soak.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn params_from_seed(seed: u64) -> RecoveryParams {
    let s = &mut seed.clone();
    fn window(s: &mut u64, start_max: u64, len_min: u64, len_max: u64) -> (u64, u64) {
        (
            splitmix(s) % start_max,
            len_min + splitmix(s) % (len_max - len_min),
        )
    }
    fn crash(s: &mut u64) -> (u64, u64, u8) {
        let (start, len) = window(s, 5_500, 200, 5_000);
        (start + 500, len, (splitmix(s) % 3) as u8)
    }
    fn drop01(s: &mut u64) -> f64 {
        (splitmix(s) % 1000) as f64 / 1000.0
    }
    RecoveryParams {
        seed,
        crashes: [crash(s), crash(s), crash(s)],
        outage: window(s, 4_000, 500, 6_000),
        partition: window(s, 4_000, 500, 8_000),
        drops: (drop01(s), drop01(s), drop01(s)),
        stalls: (
            splitmix(s) % 6_000,
            splitmix(s) % 6_000,
            splitmix(s) % 6_000,
        ),
    }
}

fn assert_recovers(p: &RecoveryParams) {
    let out = run_recovery(p, true);
    assert!(out.converged, "scenario {p:?} did not converge: {out:?}");
    assert_eq!(
        out.pending_hints, 0,
        "scenario {p:?} left hints queued: {out:?}"
    );
    assert_eq!(
        out.violations, 0,
        "scenario {p:?} violated XCY post-storm: {out:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole property: **eventual convergence under chaos**. Any bounded
    /// plan — per-store replica crashes in any region, a US outage, an EU↔US
    /// partition, replication drops and stalls — heals into a state where
    /// every replica of every store holds every committed write, no hint is
    /// stranded, the budgeted barrier completed (however many re-arms the
    /// storm forced), and the checker sees zero XCY violations.
    #[test]
    fn randomized_fault_plans_converge_with_recovery_enabled(
        seed in any::<u64>(),
        crash_a in (500u64..6000, 200u64..5000, 0u8..3),
        crash_b in (500u64..6000, 200u64..5000, 0u8..3),
        crash_c in (500u64..6000, 200u64..5000, 0u8..3),
        outage in (0u64..4000, 500u64..6000),
        partition in (0u64..4000, 500u64..8000),
        drops in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        stalls in (0u64..6000, 0u64..6000, 0u64..6000),
    ) {
        let p = RecoveryParams {
            seed,
            crashes: [crash_a, crash_b, crash_c],
            outage,
            partition,
            drops,
            stalls,
        };
        let out = run_recovery(&p, true);
        prop_assert!(out.converged, "scenario {:?} did not converge: {:?}", p, out);
        prop_assert_eq!(out.pending_hints, 0, "stranded hints in {:?}", p);
        prop_assert_eq!(out.violations, 0, "XCY violation in {:?}", p);
        prop_assert!(out.rearms < 512, "barrier re-armed unboundedly in {:?}", p);
    }
}

/// The ablation the plane exists for: with [`RecoveryConfig::disabled`] and
/// no anti-entropy, a replication send *suppressed at delivery time* (here:
/// an EU↔US partition covering the ~100 ms arrival) is dropped outright —
/// the same plan that converges with recovery enabled leaves the US replicas
/// permanently stale, and the crashed EU replica of `db-a` restarts empty
/// without its WAL. Fully deterministic, so the contrast is not luck.
#[test]
fn disabled_recovery_demonstrably_fails_to_converge() {
    let p = RecoveryParams {
        seed: 7,
        // A crash window per store: without a WAL the replica also restarts
        // empty, compounding the loss.
        crashes: [(500, 1000, 0), (700, 1000, 1), (900, 1000, 2)],
        outage: (1000, 2000),
        partition: (0, 3000),
        drops: (0.0, 0.0, 0.0),
        stalls: (0, 0, 0),
    };
    let bare = run_recovery(&p, false);
    assert!(
        !bare.converged,
        "without WAL/handoff/anti-entropy the dropped sends must be lost: {bare:?}"
    );
    let recovered = run_recovery(&p, true);
    assert!(
        recovered.converged,
        "the identical plan converges once the recovery plane is on: {recovered:?}"
    );
    assert_eq!(recovered.violations, 0);
}

/// 50-seed soak for the `chaos-soak` CI job (`--ignored`): the convergence
/// property over a wider randomized sweep than the tier-1 proptest budget.
#[test]
#[ignore = "soak: run via `cargo test --test recovery_properties -- --ignored`"]
fn convergence_soak_50_seeds() {
    for seed in 0..50u64 {
        let p = params_from_seed(seed);
        assert_recovers(&p);
    }
}

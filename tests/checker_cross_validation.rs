//! Statistical cross-validation of the formal XCY checker against the
//! operational system: replay many post-notification requests against the
//! simulated stores, record each as a formal execution, and verify that the
//! checker's verdict matches the application-level observation **per
//! request** — not just in aggregate.
//!
//! The second half cross-validates the [`antipode::ConsistencyChecker`]
//! against the happens-before race detector ([`antipode::RaceDetector`]):
//! the checker replays the *lineage*, the detector reconstructs causality
//! from message edges alone — under randomized chaos the two independent
//! analyses must report exactly the same unmet dependencies at every
//! checkpoint.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker, RaceDetector, TraceEvent};
use antipode_lineage::model::{Causality, Execution, ProcId};
use antipode_lineage::{Lineage, LineageId, WriteId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::probe::{VisibilityEvent, VisibilityProbe};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{Redis, Sns};
use bytes::Bytes;

/// Runs `n` requests; for each, returns (checker saw violation, app saw
/// not-found).
fn replay(n: usize, with_barrier: bool, seed: u64) -> Vec<(bool, bool)> {
    let sim = Sim::new(seed);
    let net = Rc::new(Network::global_triangle());
    // Redis vs SNS: a close race (Table 1: 88%), so both outcomes appear.
    let posts = Redis::new(&sim, net.clone(), "post-storage", &[EU, US]);
    let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);
    let post_shim = KvShim::new(posts.store().clone());
    let notif_shim = QueueShim::new(notifier.queue().clone());

    let outcomes: Rc<RefCell<Vec<(bool, bool)>>> = Rc::new(RefCell::new(Vec::new()));

    for i in 0..n {
        let sim2 = sim.clone();
        let post_shim = post_shim.clone();
        let notif_shim = notif_shim.clone();
        let posts_store = posts.store().clone();
        let outcomes = outcomes.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(300 * i as u64)).await;
            let mut exec = Execution::new();
            let l_write = LineageId(i as u64 * 2);
            let l_read = LineageId(i as u64 * 2 + 1);
            let post_svc = ProcId(1);
            let notif_svc = ProcId(2);
            let reader = ProcId(3);

            let mut sub = notif_shim.subscribe(US).expect("US configured");

            // Writer request.
            let key = format!("post-{i}");
            let mut lin = Lineage::new(l_write);
            let post_wid = post_shim
                .write(EU, &key, Bytes::from_static(b"body"), &mut lin)
                .await
                .expect("EU configured");
            exec.write(post_svc, l_write, post_wid.clone());
            let notif_wid = notif_shim
                .publish(EU, Bytes::from(key.clone()), &mut lin)
                .await
                .expect("EU configured");
            exec.write(notif_svc, l_write, notif_wid.clone());

            // Reader request.
            let msg = sub
                .recv()
                .await
                .expect("delivered")
                .expect("valid envelope");
            exec.read(
                reader,
                l_read,
                notif_wid.datastore().to_string(),
                notif_wid.key().to_string(),
                Some(notif_wid.clone()),
            );
            if with_barrier {
                posts_store
                    .wait_visible(US, &key, post_wid.version())
                    .await
                    .expect("US configured");
            }
            let got = post_shim.read(US, &key).await.expect("US configured");
            let found = got.is_some();
            exec.read(
                reader,
                l_read,
                post_wid.datastore().to_string(),
                key,
                found.then(|| post_wid.clone()),
            );
            let _ = msg;

            let checker_flags = !exec.is_consistent(Causality::Xcy);
            outcomes.borrow_mut().push((checker_flags, !found));
        });
    }
    sim.run();
    let out = outcomes.borrow().clone();
    out
}

#[test]
fn checker_agrees_with_system_per_request() {
    let outcomes = replay(120, false, 0xC0DE);
    assert_eq!(outcomes.len(), 120);
    let violations = outcomes.iter().filter(|(_, app)| *app).count();
    // Redis × SNS is a real race: both outcomes must occur in the sample.
    assert!(
        violations > 10,
        "only {violations} violations — race did not exercise both sides"
    );
    assert!(
        violations < 120,
        "every request violated — race did not exercise both sides"
    );
    for (i, (checker, app)) in outcomes.iter().enumerate() {
        assert_eq!(checker, app, "request {i}: checker={checker} app={app}");
    }
}

#[test]
fn with_barrier_both_views_are_clean() {
    let outcomes = replay(60, true, 0xC0DF);
    for (i, (checker, app)) in outcomes.iter().enumerate() {
        assert!(!checker && !app, "request {i} still violated");
    }
}

// ---------------------------------------------------------------------------
// Race detector ⇄ ConsistencyChecker cross-validation under chaos.
// ---------------------------------------------------------------------------

const KV_STORES: [&str; 3] = ["db-a", "db-b", "db-c"];

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(200.0),
    }
}

/// Deterministic parameter derivation (splitmix64) so each seed names one
/// replayable chaos scenario without pulling in a generator dependency.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A probe that appends every store visibility transition to the trace.
fn probe_into(trace: Rc<RefCell<Vec<TraceEvent>>>) -> VisibilityProbe {
    Rc::new(move |e: &VisibilityEvent| {
        let ev = match e {
            VisibilityEvent::KvApplied {
                store,
                region,
                key,
                watermark,
                at,
            } => TraceEvent::KvApplied {
                store: store.clone(),
                region: *region,
                key: key.clone(),
                watermark: *watermark,
                at: *at,
            },
            VisibilityEvent::QueueDelivered {
                store,
                region,
                id,
                at,
            } => TraceEvent::QueueDelivered {
                store: store.clone(),
                region: *region,
                id: *id,
                at: *at,
            },
            VisibilityEvent::QueueAcked {
                store,
                region,
                id,
                at,
            } => TraceEvent::QueueAcked {
                store: store.clone(),
                region: *region,
                id: *id,
                at: *at,
            },
        };
        trace.borrow_mut().push(ev);
    })
}

/// One chaos scenario: a writer in EU touches three KV stores and publishes
/// a notification under one lineage; a reader in US checkpoints immediately
/// on receipt (the racy read) and again after a barrier (the gated read).
/// Returns, per checkpoint, the location plus the checker's and the
/// detector's sorted unmet sets.
#[allow(clippy::type_complexity)]
fn run_race_cross_validation(seed: u64) -> Vec<(String, Vec<WriteId>, Vec<WriteId>)> {
    let mut s = seed;
    let outage = (mix(&mut s) % 4000, 500 + mix(&mut s) % 7500);
    let partition = (mix(&mut s) % 4000, 500 + mix(&mut s) % 7500);

    let sim = Sim::new(seed);
    let net = Rc::new(Network::global_triangle());
    let faults = sim.faults();
    faults.schedule(
        SimTime::from_millis(outage.0),
        SimTime::from_millis(outage.0 + outage.1),
        FaultKind::RegionOutage { region: US },
    );
    faults.schedule(
        SimTime::from_millis(partition.0),
        SimTime::from_millis(partition.0 + partition.1),
        FaultKind::Partition { a: EU, b: US },
    );

    let trace: Rc<RefCell<Vec<TraceEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let mut ap = Antipode::new(sim.clone());
    let mut kv_shims = Vec::new();
    for name in KV_STORES {
        let drop_p = (mix(&mut s) % 90) as f64 / 100.0;
        let stall = mix(&mut s) % 6000;
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::ReplicationDrop {
                store: name.to_string(),
                probability: drop_p,
            },
        );
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_millis(stall),
            FaultKind::ReplicationStall {
                store: name.to_string(),
                region: US,
            },
        );
        let store = KvStore::new(&sim, net.clone(), name, &[EU, US], fast_profile());
        store.set_probe(Some(probe_into(trace.clone())));
        let shim = KvShim::new(store);
        ap.register(Rc::new(shim.clone()));
        kv_shims.push(shim);
    }
    let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);
    notifier.queue().set_probe(Some(probe_into(trace.clone())));
    let notif_shim = QueueShim::new(notifier.queue().clone());
    ap.register(Rc::new(notif_shim.clone()));
    let checker = ConsistencyChecker::new(ap.clone());

    // Subscribe before any publish can race the subscription.
    let mut sub = notif_shim.subscribe(US).expect("US configured");

    // Writer in EU.
    {
        let sim2 = sim.clone();
        let trace = trace.clone();
        let kv_shims = kv_shims.clone();
        let notif_shim = notif_shim.clone();
        sim.spawn(async move {
            let mut lin = Lineage::new(LineageId(1));
            for shim in &kv_shims {
                let wid = shim
                    .write(EU, "k", Bytes::from_static(b"v"), &mut lin)
                    .await
                    .expect("EU configured");
                trace.borrow_mut().push(TraceEvent::Write {
                    proc: "writer".into(),
                    write: wid,
                    at: sim2.now(),
                });
            }
            let notif_wid = notif_shim
                .publish(EU, Bytes::from_static(b"posted"), &mut lin)
                .await
                .expect("EU configured");
            let msg_id = notif_wid.version();
            trace.borrow_mut().push(TraceEvent::Write {
                proc: "writer".into(),
                write: notif_wid,
                at: sim2.now(),
            });
            trace.borrow_mut().push(TraceEvent::Send {
                proc: "writer".into(),
                channel: "notifier".into(),
                msg: msg_id,
                at: sim2.now(),
            });
        });
    }

    // Reader in US: checkpoint on receipt (racy), then after a barrier.
    let checker_sets: Rc<RefCell<Vec<(String, Vec<WriteId>)>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let sim2 = sim.clone();
        let trace = trace.clone();
        let checker = checker.clone();
        let checker_sets = checker_sets.clone();
        let ap = ap.clone();
        sim.spawn(async move {
            let msg = sub.recv().await.expect("delivered").expect("envelope");
            trace.borrow_mut().push(TraceEvent::Recv {
                proc: "reader".into(),
                channel: "notifier".into(),
                msg: msg.raw.id,
                at: sim2.now(),
            });
            // Reconstruct the full lineage: the carried one plus the publish
            // identifier itself (serialized before the append, §6.1).
            let mut lin = msg.lineage.clone().expect("shim-published");
            lin.append(WriteId::new(
                "notifier",
                format!("msg-{}", msg.raw.id),
                msg.raw.id,
            ));
            for location in ["reader:recv", "reader:post-barrier"] {
                if location == "reader:post-barrier" {
                    ap.barrier(&lin, US)
                        .await
                        .expect("bounded faults are retried, not surfaced");
                }
                let report = checker.checkpoint(location, &lin, US);
                trace.borrow_mut().push(TraceEvent::Checkpoint {
                    proc: "reader".into(),
                    location: location.into(),
                    region: US,
                    at: sim2.now(),
                });
                let mut unmet = report.unmet.clone();
                unmet.sort();
                checker_sets.borrow_mut().push((location.into(), unmet));
            }
        });
    }
    sim.run();

    let detector = RaceDetector::analyze(&trace.borrow());
    let checker_sets = checker_sets.borrow();
    assert_eq!(
        detector.findings().len(),
        checker_sets.len(),
        "seed {seed}: checkpoint counts diverge"
    );
    checker_sets
        .iter()
        .zip(detector.findings())
        .map(|((loc, checker_unmet), finding)| {
            assert_eq!(loc, &finding.location, "seed {seed}: checkpoint order");
            let mut detector_unmet = finding.unmet.clone();
            detector_unmet.sort();
            (loc.clone(), checker_unmet.clone(), detector_unmet)
        })
        .collect()
}

/// Tentpole cross-validation: on ≥ 50 randomized chaos seeds the
/// happens-before race detector and the lineage-replaying checker must
/// flag exactly the same unmet dependencies at exactly the same
/// checkpoints — and the chaos must exercise both racy and clean runs.
#[test]
fn race_detector_agrees_with_checker_on_chaos_seeds() {
    let mut racy = 0usize;
    let mut clean = 0usize;
    for seed in 0..60u64 {
        let per_checkpoint = run_race_cross_validation(seed);
        assert_eq!(per_checkpoint.len(), 2, "seed {seed}");
        for (location, checker_unmet, detector_unmet) in &per_checkpoint {
            assert_eq!(
                checker_unmet, detector_unmet,
                "seed {seed} @ {location}: checker and race detector diverge"
            );
            if location == "reader:post-barrier" {
                assert!(
                    checker_unmet.is_empty(),
                    "seed {seed}: barrier-gated checkpoint must be clean"
                );
            }
        }
        if per_checkpoint[0].1.is_empty() {
            clean += 1;
        } else {
            racy += 1;
        }
    }
    assert!(racy > 0, "no seed produced a race — chaos too weak");
    assert!(clean > 0, "every seed raced — agreement is vacuous");
}

//! Statistical cross-validation of the formal XCY checker against the
//! operational system: replay many post-notification requests against the
//! simulated stores, record each as a formal execution, and verify that the
//! checker's verdict matches the application-level observation **per
//! request** — not just in aggregate.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode_lineage::model::{Causality, Execution, ProcId};
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{Redis, Sns};
use bytes::Bytes;

/// Runs `n` requests; for each, returns (checker saw violation, app saw
/// not-found).
fn replay(n: usize, with_barrier: bool, seed: u64) -> Vec<(bool, bool)> {
    let sim = Sim::new(seed);
    let net = Rc::new(Network::global_triangle());
    // Redis vs SNS: a close race (Table 1: 88%), so both outcomes appear.
    let posts = Redis::new(&sim, net.clone(), "post-storage", &[EU, US]);
    let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);
    let post_shim = KvShim::new(posts.store().clone());
    let notif_shim = QueueShim::new(notifier.queue().clone());

    let outcomes: Rc<RefCell<Vec<(bool, bool)>>> = Rc::new(RefCell::new(Vec::new()));

    for i in 0..n {
        let sim2 = sim.clone();
        let post_shim = post_shim.clone();
        let notif_shim = notif_shim.clone();
        let posts_store = posts.store().clone();
        let outcomes = outcomes.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(300 * i as u64)).await;
            let mut exec = Execution::new();
            let l_write = LineageId(i as u64 * 2);
            let l_read = LineageId(i as u64 * 2 + 1);
            let post_svc = ProcId(1);
            let notif_svc = ProcId(2);
            let reader = ProcId(3);

            let mut sub = notif_shim.subscribe(US).expect("US configured");

            // Writer request.
            let key = format!("post-{i}");
            let mut lin = Lineage::new(l_write);
            let post_wid = post_shim
                .write(EU, &key, Bytes::from_static(b"body"), &mut lin)
                .await
                .expect("EU configured");
            exec.write(post_svc, l_write, post_wid.clone());
            let notif_wid = notif_shim
                .publish(EU, Bytes::from(key.clone()), &mut lin)
                .await
                .expect("EU configured");
            exec.write(notif_svc, l_write, notif_wid.clone());

            // Reader request.
            let msg = sub
                .recv()
                .await
                .expect("delivered")
                .expect("valid envelope");
            exec.read(
                reader,
                l_read,
                notif_wid.datastore().to_string(),
                notif_wid.key().to_string(),
                Some(notif_wid.clone()),
            );
            if with_barrier {
                posts_store
                    .wait_visible(US, &key, post_wid.version())
                    .await
                    .expect("US configured");
            }
            let got = post_shim.read(US, &key).await.expect("US configured");
            let found = got.is_some();
            exec.read(
                reader,
                l_read,
                post_wid.datastore().to_string(),
                key,
                found.then(|| post_wid.clone()),
            );
            let _ = msg;

            let checker_flags = !exec.is_consistent(Causality::Xcy);
            outcomes.borrow_mut().push((checker_flags, !found));
        });
    }
    sim.run();
    let out = outcomes.borrow().clone();
    out
}

#[test]
fn checker_agrees_with_system_per_request() {
    let outcomes = replay(120, false, 0xC0DE);
    assert_eq!(outcomes.len(), 120);
    let violations = outcomes.iter().filter(|(_, app)| *app).count();
    // Redis × SNS is a real race: both outcomes must occur in the sample.
    assert!(
        violations > 10,
        "only {violations} violations — race did not exercise both sides"
    );
    assert!(
        violations < 120,
        "every request violated — race did not exercise both sides"
    );
    for (i, (checker, app)) in outcomes.iter().enumerate() {
        assert_eq!(checker, app, "request {i}: checker={checker} app={app}");
    }
}

#[test]
fn with_barrier_both_views_are_clean() {
    let outcomes = replay(60, true, 0xC0DF);
    for (i, (checker, app)) in outcomes.iter().enumerate() {
        assert!(!checker && !app, "request {i} still violated");
    }
}

//! Cross-crate end-to-end tests: the full store × notifier matrix, the ACL
//! scenario, and determinism of entire experiment runs.

use std::time::Duration;

use antipode_app::acl::{run as run_acl, AclConfig};
use antipode_app::post_notification::{
    run as run_pn, NotifierKind, PostNotifConfig, PostStoreKind,
};
use antipode_app::social::{run as run_social, SocialConfig};
use antipode_app::train_ticket::{run as run_tt, TrainTicketConfig};
use antipode_sim::net::regions::{EU, SG};

/// §7.3: "regardless of the combination of individual datastore consistency
/// semantics, by applying Antipode, this inconsistency was always corrected"
/// — the full 4 × 3 matrix.
#[test]
fn antipode_corrects_every_store_combination() {
    for n in NotifierKind::ALL {
        for p in PostStoreKind::ALL {
            let r = run_pn(&PostNotifConfig::new(p, n).with_requests(60).with_antipode());
            assert_eq!(
                r.violations.hits(),
                0,
                "{}×{}: violations with Antipode",
                p.name(),
                n.name()
            );
            assert_eq!(
                r.violations.total(),
                60,
                "{}×{}: all reads measured",
                p.name(),
                n.name()
            );
        }
    }
}

/// Table 1 orderings that must hold whatever the exact percentages: SNS is
/// the most dangerous notifier, DynamoDB-as-notifier the safest; S3 is the
/// most dangerous post-storage.
#[test]
fn table1_orderings_hold() {
    let cell = |p, n| {
        run_pn(&PostNotifConfig::new(p, n).with_requests(250))
            .violations
            .percent()
    };
    let sns_mysql = cell(PostStoreKind::MySql, NotifierKind::Sns);
    let amq_mysql = cell(PostStoreKind::MySql, NotifierKind::Amq);
    let ddb_mysql = cell(PostStoreKind::MySql, NotifierKind::DynamoDb);
    assert!(sns_mysql > amq_mysql, "SNS {sns_mysql}% > AMQ {amq_mysql}%");
    assert!(amq_mysql > ddb_mysql, "AMQ {amq_mysql}% > DDB {ddb_mysql}%");
    let amq_s3 = cell(PostStoreKind::S3, NotifierKind::Amq);
    assert!(amq_s3 > 90.0, "S3 loses against AMQ: {amq_s3}%");
}

/// §5.1: the ACL scenario end to end.
#[test]
fn acl_transfer_end_to_end() {
    let without = run_acl(&AclConfig::new().with_requests(80));
    assert!(
        without.wrong_notifications.percent() > 50.0,
        "without transfer: {}%",
        without.wrong_notifications.percent()
    );
    let with = run_acl(&AclConfig::new().with_requests(80).with_transfer());
    assert_eq!(with.wrong_notifications.hits(), 0);
}

/// The same seed reproduces bit-identical results across all three
/// applications (the substrate is fully deterministic).
#[test]
fn experiments_are_deterministic() {
    let a =
        run_pn(&PostNotifConfig::new(PostStoreKind::Redis, NotifierKind::Amq).with_requests(120));
    let b =
        run_pn(&PostNotifConfig::new(PostStoreKind::Redis, NotifierKind::Amq).with_requests(120));
    assert_eq!(a.violations.hits(), b.violations.hits());
    assert_eq!(a.consistency_window.values(), b.consistency_window.values());

    let cfg = SocialConfig::new(SG, 40.0).with_duration(Duration::from_secs(30));
    let a = run_social(&cfg);
    let b = run_social(&cfg);
    assert_eq!(a.violations.hits(), b.violations.hits());
    assert_eq!(a.writer.completed(), b.writer.completed());
    assert_eq!(
        a.writer.latency().unwrap().mean,
        b.writer.latency().unwrap().mean,
        "latency distributions must be identical"
    );

    let cfg = TrainTicketConfig::new(150.0).with_duration(Duration::from_secs(30));
    let a = run_tt(&cfg);
    let b = run_tt(&cfg);
    assert_eq!(a.client.completed(), b.client.completed());
    assert_eq!(a.violations.hits(), b.violations.hits());
}

/// Different seeds give different (but valid) runs.
#[test]
fn seeds_matter() {
    let a = run_pn(
        &PostNotifConfig::new(PostStoreKind::Redis, NotifierKind::Sns)
            .with_requests(200)
            .with_seed(1),
    );
    let b = run_pn(
        &PostNotifConfig::new(PostStoreKind::Redis, NotifierKind::Sns)
            .with_requests(200)
            .with_seed(2),
    );
    assert_ne!(
        a.consistency_window.values(),
        b.consistency_window.values(),
        "different seeds should differ in the details"
    );
}

/// The social network writer barely notices Antipode (§7.4: ≤ 2 %), across
/// both replication pairs.
#[test]
fn social_writer_side_cost_is_negligible() {
    for remote in [EU, SG] {
        let base =
            run_social(&SocialConfig::new(remote, 80.0).with_duration(Duration::from_secs(40)));
        let anti = run_social(
            &SocialConfig::new(remote, 80.0)
                .with_duration(Duration::from_secs(40))
                .with_antipode(),
        );
        let lb = base.writer.latency().unwrap().p50;
        let la = anti.writer.latency().unwrap().p50;
        assert!(
            (la - lb) / lb < 0.05,
            "{remote}: writer p50 {lb} → {la} exceeds 5%"
        );
    }
}

//! Substrate conformance: every store in the catalogue — both families —
//! must exhibit the same engine-level behaviors, because they all run on the
//! one replication engine. Each scenario below is parameterized over all
//! five KV stores (MySQL, DynamoDB, Redis, S3, MongoDB) and all four queue
//! brokers (SNS, AMQ, RabbitMQ, DynamoDB Streams):
//!
//! 1. write → replicate → visible in every region;
//! 2. fault-window entry suppresses replication, exit heals it (handoff);
//! 3. crash → WAL replay → hint flush → anti-entropy convergence;
//! 4. waiter cancellation semantics (KV waits fail fast, queue waits park);
//! 5. visibility-probe emission (applies, deliveries, acks);
//! 6. same seed + same plan ⇒ byte-identical probe traces.
//!
//! All stores run one *uniform* fast profile (via each facade's
//! `with_profile`) so the scenarios control timing exactly; the calibrated
//! per-store profiles are covered by the facade modules' own tests.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{FaultKind, Network, Region, Sim, SimTime};
use antipode_store::probe::VisibilityEvent;
use antipode_store::replica::KvProfile;
use antipode_store::{
    Amq, DynamoDb, DynamoDbStream, KvStore, MongoDb, MySql, QueueProfile, QueueStore, RabbitMq,
    RecoveryConfig, Redis, RepairConfig, Sns, StoreError, S3,
};
use bytes::Bytes;

const REGIONS: [Region; 2] = [EU, US];

fn kv_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(50.0),
    }
}

fn queue_profile() -> QueueProfile {
    QueueProfile {
        local_publish: Dist::constant_ms(1.0),
        delivery: Dist::constant_ms(80.0),
        local_delivery: Dist::constant_ms(2.0),
        rtt_hops: 1.0,
    }
}

/// All five KV-family stores, named so fault plans can target each.
fn kv_stores(sim: &Sim, net: &Rc<Network>) -> Vec<(&'static str, KvStore)> {
    let p = kv_profile;
    vec![
        (
            "mysql",
            MySql::with_profile(sim, net.clone(), "mysql", &REGIONS, p())
                .store()
                .clone(),
        ),
        (
            "ddb",
            DynamoDb::with_profile(sim, net.clone(), "ddb", &REGIONS, p())
                .store()
                .clone(),
        ),
        (
            "redis",
            Redis::with_profile(sim, net.clone(), "redis", &REGIONS, p())
                .store()
                .clone(),
        ),
        (
            "s3",
            S3::with_profile(sim, net.clone(), "s3", &REGIONS, p())
                .store()
                .clone(),
        ),
        (
            "mongo",
            MongoDb::with_profile(sim, net.clone(), "mongo", &REGIONS, p())
                .store()
                .clone(),
        ),
    ]
}

/// All four queue-family brokers.
fn queue_stores(sim: &Sim, net: &Rc<Network>) -> Vec<(&'static str, QueueStore)> {
    let p = queue_profile;
    vec![
        (
            "sns",
            Sns::with_profile(sim, net.clone(), "sns", &REGIONS, p())
                .queue()
                .clone(),
        ),
        (
            "amq",
            Amq::with_profile(sim, net.clone(), "amq", &REGIONS, p())
                .queue()
                .clone(),
        ),
        (
            "rabbit",
            RabbitMq::with_profile(sim, net.clone(), "rabbit", &REGIONS, p())
                .queue()
                .clone(),
        ),
        (
            "ddb-stream",
            DynamoDbStream::with_profile(sim, net.clone(), "ddb-stream", &REGIONS, p())
                .queue()
                .clone(),
        ),
    ]
}

#[test]
fn every_store_write_replicates_and_becomes_visible() {
    let sim = Sim::new(101);
    let net = Rc::new(Network::global_triangle());
    let kvs = kv_stores(&sim, &net);
    let queues = queue_stores(&sim, &net);
    let (kvs2, queues2) = (kvs.clone(), queues.clone());
    sim.block_on(async move {
        for (name, s) in &kvs2 {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
            assert!(s.is_visible(EU, "k", v), "{name}: origin apply");
        }
        for (name, q) in &queues2 {
            let id = q.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            q.wait_visible(EU, id).await.unwrap();
            q.wait_visible(US, id).await.unwrap();
            assert!(q.is_visible(US, id), "{name}: delivered");
        }
    });
    sim.run();
    for (name, s) in &kvs {
        assert!(s.converged(), "{name}: replicas diverged");
        assert_eq!(s.pending_hints(), 0, "{name}: stranded hints");
    }
    for (name, q) in &queues {
        assert!(q.converged(), "{name}: broker replicas diverged");
        assert_eq!(q.pending_hints(), 0, "{name}: stranded hints");
    }
}

/// A crash window covering the replication arrival: the send parks as a
/// hint at fault entry and flushes at fault exit — for every store.
#[test]
fn fault_window_entry_parks_sends_and_exit_heals_them() {
    let sim = Sim::new(102);
    let net = Rc::new(Network::global_triangle());
    let kvs = kv_stores(&sim, &net);
    let queues = queue_stores(&sim, &net);
    let all_names: Vec<&str> = kvs
        .iter()
        .map(|(n, _)| *n)
        .chain(queues.iter().map(|(n, _)| *n))
        .collect();
    for name in &all_names {
        sim.faults().schedule(
            SimTime::from_millis(10),
            SimTime::from_secs(2),
            FaultKind::ReplicaCrash {
                store: name.to_string(),
                region: US,
            },
        );
    }
    let (kvs2, queues2) = (kvs.clone(), queues.clone());
    sim.block_on({
        let sim = sim.clone();
        async move {
            let mut writes = Vec::new();
            for (name, s) in &kvs2 {
                let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
                writes.push((*name, v));
            }
            let mut msgs = Vec::new();
            for (name, q) in &queues2 {
                let id = q.publish(EU, Bytes::from_static(b"m")).await.unwrap();
                msgs.push((*name, id));
            }
            // Mid-window: the US arrival was suppressed everywhere.
            sim.sleep_until(SimTime::from_secs(1)).await;
            for ((name, s), (_, v)) in kvs2.iter().zip(&writes) {
                assert!(!s.is_visible(US, "k", *v), "{name}: visible mid-crash");
            }
            for ((name, q), (_, id)) in queues2.iter().zip(&msgs) {
                assert!(!q.is_visible(US, *id), "{name}: delivered mid-crash");
            }
        }
    });
    // Fault exit: hinted handoff replays every parked send.
    sim.run();
    assert!(sim.now() >= SimTime::from_secs(2));
    for (name, s) in &kvs {
        assert!(s.is_visible(US, "k", 1), "{name}: hint not flushed");
        assert_eq!(s.pending_hints(), 0, "{name}");
    }
    for (name, q) in &queues {
        assert!(q.is_visible(US, 1), "{name}: hint not flushed");
        assert_eq!(q.pending_hints(), 0, "{name}");
    }
}

/// Crash after the write landed: the memtable wipes, the WAL replays it at
/// restart, and anti-entropy certifies convergence — both families.
#[test]
fn crash_wal_replay_and_anti_entropy_converge_for_every_store() {
    let sim = Sim::new(103);
    let net = Rc::new(Network::global_triangle());
    let kvs = kv_stores(&sim, &net);
    let queues = queue_stores(&sim, &net);
    let all_names: Vec<&str> = kvs
        .iter()
        .map(|(n, _)| *n)
        .chain(queues.iter().map(|(n, _)| *n))
        .collect();
    for name in &all_names {
        sim.faults().schedule(
            SimTime::from_secs(3),
            SimTime::from_secs(6),
            FaultKind::ReplicaCrash {
                store: name.to_string(),
                region: US,
            },
        );
    }
    for (_, s) in &kvs {
        s.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(1),
            horizon: Some(SimTime::from_secs(60)),
        });
    }
    for (_, q) in &queues {
        q.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(1),
            horizon: Some(SimTime::from_secs(60)),
        });
    }
    let (kvs2, queues2) = (kvs.clone(), queues.clone());
    sim.block_on({
        let sim = sim.clone();
        async move {
            for (_, s) in &kvs2 {
                let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
                s.wait_visible(US, "k", v).await.unwrap();
            }
            for (_, q) in &queues2 {
                let id = q.publish(EU, Bytes::from_static(b"m")).await.unwrap();
                q.wait_visible(US, id).await.unwrap();
            }
            // The write is durable in the US WAL before the crash hits.
            for (name, s) in &kvs2 {
                assert!(s.wal_len(US) >= 1, "{name}: WAL empty");
            }
            for (name, q) in &queues2 {
                assert!(q.wal_len(US) >= 1, "{name}: broker WAL empty");
            }
            // Mid-crash: the volatile state is gone.
            sim.sleep_until(SimTime::from_secs(4)).await;
            for (name, s) in &kvs2 {
                assert!(!s.is_visible(US, "k", 1), "{name}: survived the wipe?");
            }
            for (name, q) in &queues2 {
                assert!(!q.is_visible(US, 1), "{name}: survived the wipe?");
            }
        }
    });
    sim.run();
    for (name, s) in &kvs {
        assert!(
            s.is_visible(US, "k", 1),
            "{name}: WAL replay lost the write"
        );
        assert!(s.converged(), "{name}");
        assert_eq!(s.pending_hints(), 0, "{name}");
    }
    for (name, q) in &queues {
        assert!(q.is_visible(US, 1), "{name}: WAL replay lost the message");
        assert!(q.converged(), "{name}");
        assert_eq!(q.pending_hints(), 0, "{name}");
    }
}

/// The one behavior the families legitimately disagree on: a crash cancels
/// KV waiters with an error (callers see unavailability and can fail over),
/// while queue waiters silently re-park and resolve after the heal
/// (consumers must never observe a transient broker fault as message loss).
#[test]
fn waiter_cancellation_fails_kv_waits_and_parks_queue_waits() {
    let sim = Sim::new(104);
    let net = Rc::new(Network::global_triangle());
    let kvs = kv_stores(&sim, &net);
    let queues = queue_stores(&sim, &net);
    let all_names: Vec<&str> = kvs
        .iter()
        .map(|(n, _)| *n)
        .chain(queues.iter().map(|(n, _)| *n))
        .collect();
    for name in &all_names {
        sim.faults().schedule(
            SimTime::from_millis(10),
            SimTime::from_secs(5),
            FaultKind::ReplicaCrash {
                store: name.to_string(),
                region: US,
            },
        );
    }
    sim.block_on({
        let sim = sim.clone();
        async move {
            for (name, s) in &kvs {
                let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
                let err = s
                    .wait_visible(US, "k", v)
                    .await
                    .expect_err("the crash must cancel the KV wait");
                assert!(
                    matches!(err, StoreError::Unavailable { .. }),
                    "{name}: wrong cancellation error: {err}"
                );
            }
            for (name, q) in &queues {
                let id = q.publish(EU, Bytes::from_static(b"m")).await.unwrap();
                q.wait_visible(US, id)
                    .await
                    .unwrap_or_else(|e| panic!("{name}: queue wait must not fail: {e}"));
                assert!(
                    sim.now() >= SimTime::from_secs(5),
                    "{name}: queue wait resolved before the heal"
                );
            }
        }
    });
}

#[test]
fn probes_fire_for_applies_deliveries_and_acks() {
    let sim = Sim::new(105);
    let net = Rc::new(Network::global_triangle());
    let kvs = kv_stores(&sim, &net);
    let queues = queue_stores(&sim, &net);
    let events: Rc<RefCell<Vec<VisibilityEvent>>> = Rc::new(RefCell::new(Vec::new()));
    for (_, s) in &kvs {
        let events = events.clone();
        s.set_probe(Some(Rc::new(move |e: &VisibilityEvent| {
            events.borrow_mut().push(e.clone())
        })));
    }
    for (_, q) in &queues {
        let events = events.clone();
        q.set_probe(Some(Rc::new(move |e: &VisibilityEvent| {
            events.borrow_mut().push(e.clone())
        })));
    }
    let (kvs2, queues2) = (kvs.clone(), queues.clone());
    sim.block_on(async move {
        for (_, s) in &kvs2 {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
        }
        for (_, q) in &queues2 {
            let id = q.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            q.wait_visible(US, id).await.unwrap();
            q.ack(US, id).unwrap();
        }
    });
    sim.run();
    let events = events.borrow();
    for (name, _) in &kvs {
        let applies = events
            .iter()
            .filter(
                |e| matches!(e, VisibilityEvent::KvApplied { store, .. } if store.as_str() == *name),
            )
            .count();
        assert!(applies >= REGIONS.len(), "{name}: {applies} applies probed");
    }
    for (name, _) in &queues {
        let delivered = events
            .iter()
            .filter(|e| {
                matches!(e, VisibilityEvent::QueueDelivered { store, .. } if store.as_str() == *name)
            })
            .count();
        let acked = events
            .iter()
            .filter(
                |e| matches!(e, VisibilityEvent::QueueAcked { store, region, .. } if store.as_str() == *name && *region == US),
            )
            .count();
        assert!(
            delivered >= REGIONS.len(),
            "{name}: {delivered} deliveries probed"
        );
        assert_eq!(acked, 1, "{name}: acks probed");
    }
}

/// Determinism: the same seed and the same (chaotic) fault plan produce a
/// byte-identical probe trace across the whole catalogue, run to run.
#[test]
fn identical_seeds_produce_identical_probe_traces() {
    fn trace(seed: u64) -> String {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let kvs = kv_stores(&sim, &net);
        let queues = queue_stores(&sim, &net);
        let all_names: Vec<&str> = kvs
            .iter()
            .map(|(n, _)| *n)
            .chain(queues.iter().map(|(n, _)| *n))
            .collect();
        for name in &all_names {
            sim.faults().schedule(
                SimTime::from_millis(200),
                SimTime::from_secs(3),
                FaultKind::ReplicaCrash {
                    store: name.to_string(),
                    region: US,
                },
            );
            sim.faults().schedule(
                SimTime::ZERO,
                SimTime::from_secs(2),
                FaultKind::ReplicationDrop {
                    store: name.to_string(),
                    probability: 0.5,
                },
            );
        }
        let events: Rc<RefCell<Vec<VisibilityEvent>>> = Rc::new(RefCell::new(Vec::new()));
        for (_, s) in &kvs {
            let events = events.clone();
            s.set_probe(Some(Rc::new(move |e: &VisibilityEvent| {
                events.borrow_mut().push(e.clone())
            })));
        }
        for (_, q) in &queues {
            let events = events.clone();
            q.set_probe(Some(Rc::new(move |e: &VisibilityEvent| {
                events.borrow_mut().push(e.clone())
            })));
        }
        let (kvs2, queues2) = (kvs.clone(), queues.clone());
        sim.block_on(async move {
            for (_, s) in &kvs2 {
                for key in ["a", "b"] {
                    s.put(EU, key, Bytes::from_static(b"x")).await.unwrap();
                }
            }
            for (_, q) in &queues2 {
                q.publish(EU, Bytes::from_static(b"m")).await.unwrap();
            }
        });
        sim.run();
        let out = events
            .borrow()
            .iter()
            .map(|e| format!("{e:?}"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!out.is_empty(), "probe trace must not be empty");
        out
    }
    assert_eq!(trace(42), trace(42), "same seed diverged");
    assert_ne!(trace(42), trace(43), "different seeds identical");
}

/// `RecoveryConfig::disabled` is honored uniformly: with the plane off, the
/// crash-covered send is lost for *every* store — the ablation contrast that
/// motivates queue-family recovery parity.
#[test]
fn disabled_recovery_strands_the_send_for_every_store() {
    let sim = Sim::new(106);
    let net = Rc::new(Network::global_triangle());
    let kvs = kv_stores(&sim, &net);
    let queues = queue_stores(&sim, &net);
    let all_names: Vec<&str> = kvs
        .iter()
        .map(|(n, _)| *n)
        .chain(queues.iter().map(|(n, _)| *n))
        .collect();
    for name in &all_names {
        sim.faults().schedule(
            SimTime::from_millis(10),
            SimTime::from_secs(2),
            FaultKind::ReplicaCrash {
                store: name.to_string(),
                region: US,
            },
        );
    }
    for (_, s) in &kvs {
        s.set_recovery(RecoveryConfig::disabled());
    }
    for (_, q) in &queues {
        q.set_recovery(RecoveryConfig::disabled());
    }
    let (kvs2, queues2) = (kvs.clone(), queues.clone());
    sim.block_on(async move {
        for (_, s) in &kvs2 {
            s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
        }
        for (_, q) in &queues2 {
            q.publish(EU, Bytes::from_static(b"m")).await.unwrap();
        }
    });
    sim.run();
    for (name, s) in &kvs {
        assert!(!s.is_visible(US, "k", 1), "{name}: send survived ablation");
        assert!(!s.converged(), "{name}");
    }
    for (name, q) in &queues {
        assert!(!q.is_visible(US, 1), "{name}: send survived ablation");
        assert!(!q.converged(), "{name}");
    }
}

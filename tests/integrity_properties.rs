//! Storage-integrity properties: for any randomized corruption storm —
//! torn tail writes, deterministic bit rot, lost appends, each mixed with
//! replica crashes that force the damaged logs through restart replay —
//! the integrity plane (checksummed WAL frames, verified replay, scrub
//! sweeps, quarantine, anti-entropy back-fill and epoch-bumped rejoin)
//! guarantees:
//!
//! 1. **Zero silently-served corrupt versions.** Every successful read,
//!    during the storm and after it, returns a `(version, bytes)` pair that
//!    some committed write actually produced. Corrupt state either never
//!    reaches the memtable (verified replay truncates or quarantines) or is
//!    refused loudly ([`StoreError::IntegrityFault`]).
//! 2. **Byte-identical convergence post-storm.** Once the plan drains and
//!    the repair loops quiesce, every replica of every store holds the same
//!    keys, versions, *and bytes*, and every replica is healthy again.
//! 3. **Determinism.** The same seed replays the same storm to the same
//!    outcome, byte for byte — corruption injection rides the fault plan,
//!    not wall-clock entropy.
//!
//! The ablation at the bottom runs the bit-rot scenario with
//! `verify_checksums: false`: the identical damaged log replays without a
//! second look, nothing quarantines, reads serve happily — and flipping
//! verification back on exposes the corruption that was being served. That
//! contrast is the whole point of the plane.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{DiskFaultKind, FaultKind, Network, Region, Sim, SimTime};
use antipode_store::replica::{KvProfile, KvStore, StoreError};
use antipode_store::wal::scan_frames;
use antipode_store::{RecoveryConfig, RepairConfig, ReplicaHealth, WalEntry, WalLog};
use bytes::Bytes;
use proptest::prelude::*;

const STORES: [&str; 3] = ["db-a", "db-b", "db-c"];
const REGIONS: [Region; 3] = [EU, US, SG];
const KEYS: [&str; 4] = ["k0", "k1", "k2", "k3"];

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(200.0),
    }
}

/// One disk-fault window: `(start_ms, len_ms, region_ix, kind_ix, offset_seed)`.
/// `kind_ix % 3` selects torn write / bit flip / lost append.
type DiskWindow = (u64, u64, u8, u8, u64);

/// Parameters of one randomized corruption storm. Every window is bounded,
/// so the plan always heals; the property is that no corruption is ever
/// *served* on the way there and the stores converge byte-identically after.
#[derive(Clone, Debug)]
struct StormParams {
    seed: u64,
    /// Two disk-fault windows per store.
    disk: [[DiskWindow; 2]; 3],
    /// Per-store `(start_ms, len_ms, region_ix)` replica-crash window — the
    /// crash is what forces a damaged log through restart replay.
    crashes: [(u64, u64, u8); 3],
}

/// What one storm produced. `PartialEq` + the digest make the determinism
/// property a single `assert_eq!`.
#[derive(Debug, PartialEq, Eq)]
struct StormOutcome {
    /// Successful reads whose `(version, bytes)` no committed write produced.
    corrupt_serves: usize,
    /// Reads refused with [`StoreError::IntegrityFault`] (quarantine doing
    /// its job — loud refusal instead of silent corruption).
    refusals: usize,
    /// Every store byte-identical across its replicas at quiescence.
    converged_bytes: bool,
    /// Every replica healthy (no quarantine stranded) at quiescence.
    all_healthy: bool,
    /// Full final state: every stored record plus per-replica WAL footprint.
    digest: Vec<String>,
}

fn schedule_disk(faults: &antipode_sim::FaultPlan, store: &str, w: DiskWindow) {
    let (start, len, region_ix, kind_ix, offset_seed) = w;
    let fault = match kind_ix % 3 {
        0 => DiskFaultKind::TornWrite,
        1 => DiskFaultKind::BitFlip { offset_seed },
        _ => DiskFaultKind::LostAppend,
    };
    faults.schedule(
        SimTime::from_millis(start),
        SimTime::from_millis(start + len),
        FaultKind::DiskFault {
            store: store.to_string(),
            region: REGIONS[region_ix as usize % REGIONS.len()],
            fault,
        },
    );
}

/// Audits every replica of every store: a successful read must return a
/// `(version, bytes)` pair recorded at commit time, an integrity refusal is
/// counted, and any other error (crash window, outage) is legitimate.
async fn audit(
    stores: &[KvStore],
    truth: &HashMap<(usize, String, u64), Bytes>,
    corrupt: &mut usize,
    refusals: &mut usize,
) {
    for (i, store) in stores.iter().enumerate() {
        for &region in &REGIONS {
            for key in KEYS {
                match store.get(region, key).await {
                    Ok(Some(v)) => {
                        if truth.get(&(i, key.to_string(), v.version)) != Some(&v.bytes) {
                            *corrupt += 1;
                        }
                    }
                    Ok(None) => {}
                    Err(StoreError::IntegrityFault { .. }) => *refusals += 1,
                    Err(_) => {}
                }
            }
        }
    }
}

/// Builds the stack, injects the storm, writes in waves while it rages,
/// audits every read against the commit-time ground truth, and judges the
/// final state at quiescence.
fn run_storm(p: &StormParams, verify: bool) -> StormOutcome {
    let sim = Sim::new(p.seed);
    let net = Rc::new(Network::global_triangle());
    let faults = sim.faults();
    let mut stores = Vec::new();
    for (i, name) in STORES.iter().enumerate() {
        for w in p.disk[i] {
            schedule_disk(&faults, name, w);
        }
        let (crash_start, crash_len, region_ix) = p.crashes[i];
        faults.schedule(
            SimTime::from_millis(crash_start),
            SimTime::from_millis(crash_start + crash_len),
            FaultKind::ReplicaCrash {
                store: name.to_string(),
                region: REGIONS[region_ix as usize % REGIONS.len()],
            },
        );
        let store = KvStore::new(&sim, net.clone(), *name, &REGIONS, fast_profile());
        if !verify {
            store.set_recovery(RecoveryConfig {
                verify_checksums: false,
                ..RecoveryConfig::default()
            });
        }
        store.enable_scrub(RepairConfig {
            period: Duration::from_millis(700),
            horizon: Some(SimTime::from_secs(120)),
        });
        store.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(1),
            horizon: Some(SimTime::from_secs(120)),
        });
        stores.push(store);
    }
    let sim2 = sim.clone();
    let faults2 = faults.clone();
    let stores2 = stores.clone();
    let (truth, mut corrupt, refusals) = sim.block_on(async move {
        let (sim, faults, stores) = (sim2, faults2, stores2);
        // Ground truth: (store, key, version) → the bytes that commit wrote.
        // Recorded only on Ok — a put refused mid-crash committed nothing.
        let mut truth: HashMap<(usize, String, u64), Bytes> = HashMap::new();
        let mut corrupt = 0usize;
        let mut refusals = 0usize;
        // Write waves *during* the storm (windows open from 500 ms), from a
        // rotating origin so lost-append windows see live commits, auditing
        // every replica between waves.
        for wave in 0u64..8 {
            for (i, store) in stores.iter().enumerate() {
                for key in KEYS {
                    let value = Bytes::from(format!("{}:{key}:wave{wave}", STORES[i]));
                    let origin = REGIONS[(wave as usize + i) % REGIONS.len()];
                    if let Ok(version) = store.put(origin, key, value.clone()).await {
                        truth.insert((i, key.to_string(), version), value);
                    }
                }
            }
            audit(&stores, &truth, &mut corrupt, &mut refusals).await;
            sim.sleep(Duration::from_millis(800)).await;
        }
        // Let the plan drain fully, auditing at every remaining edge — the
        // reads right after a heal edge are the ones that would catch a
        // replay serving corrupt bytes.
        let mut at = sim.now();
        while let Some(t) = faults.next_transition_after(at) {
            sim.sleep_until(t).await;
            at = t;
            audit(&stores, &truth, &mut corrupt, &mut refusals).await;
        }
        (truth, corrupt, refusals)
    });
    // Quiescence: the scrub and anti-entropy loops keep sweeping until no
    // damage remains, every replica is healthy, and the plan is spent.
    sim.run();
    let mut digest = Vec::new();
    for (i, store) in stores.iter().enumerate() {
        for &region in &REGIONS {
            for key in KEYS {
                if let Some(v) = store.get_sync(region, key) {
                    if truth.get(&(i, key.to_string(), v.version)) != Some(&v.bytes) {
                        corrupt += 1;
                    }
                    digest.push(format!(
                        "{}/{region}/{key}@{}={:?}",
                        STORES[i], v.version, v.bytes
                    ));
                }
            }
            digest.push(format!(
                "{}/{region} wal={} bytes={}",
                STORES[i],
                store.wal_len(region),
                store.wal_byte_len(region)
            ));
        }
    }
    StormOutcome {
        corrupt_serves: corrupt,
        refusals,
        converged_bytes: stores.iter().all(|s| s.converged_bytes()),
        all_healthy: stores.iter().all(|s| {
            REGIONS
                .iter()
                .all(|&r| s.replica_health(r) == ReplicaHealth::Healthy)
        }),
        digest,
    }
}

// splitmix64: cheap, deterministic parameter derivation for the soak.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn params_from_seed(seed: u64) -> StormParams {
    let s = &mut seed.clone();
    fn disk(s: &mut u64) -> DiskWindow {
        (
            500 + splitmix(s) % 4_500,
            200 + splitmix(s) % 1_800,
            (splitmix(s) % 3) as u8,
            (splitmix(s) % 3) as u8,
            splitmix(s),
        )
    }
    fn crash(s: &mut u64) -> (u64, u64, u8) {
        (
            1_000 + splitmix(s) % 5_000,
            500 + splitmix(s) % 2_500,
            (splitmix(s) % 3) as u8,
        )
    }
    StormParams {
        seed,
        disk: [[disk(s), disk(s)], [disk(s), disk(s)], [disk(s), disk(s)]],
        crashes: [crash(s), crash(s), crash(s)],
    }
}

fn assert_storm_safe(p: &StormParams) {
    let out = run_storm(p, true);
    assert_eq!(
        out.corrupt_serves, 0,
        "storm {p:?} served corrupt bytes: {out:?}"
    );
    assert!(out.converged_bytes, "storm {p:?} did not converge: {out:?}");
    assert!(
        out.all_healthy,
        "storm {p:?} stranded a quarantine: {out:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tentpole property: **no corruption storm ever serves corrupt bytes**.
    /// Any bounded plan of torn writes, bit flips, and lost appends — each
    /// compounded by replica crashes that replay the damaged logs — ends
    /// with zero silently-served corrupt versions, every store byte-identical
    /// across its replicas, and every quarantined replica rejoined.
    #[test]
    fn corruption_storms_never_serve_corrupt_bytes(seed in any::<u64>()) {
        let p = params_from_seed(seed);
        let out = run_storm(&p, true);
        prop_assert_eq!(out.corrupt_serves, 0, "served corrupt bytes in {:?}", p);
        prop_assert!(out.converged_bytes, "no byte convergence in {:?}", p);
        prop_assert!(out.all_healthy, "stranded quarantine in {:?}", p);
    }

    /// Satellite: raw-byte fuzz of the WAL codec. Arbitrary truncation plus
    /// arbitrary bit flips of a valid framed log never panic the scan; the
    /// scan stops at a frame boundary, reports the failing record's exact
    /// offset, and the verified prefix decodes back to the original entries.
    #[test]
    fn wal_scan_survives_arbitrary_damage(
        seed in any::<u64>(),
        cut in any::<u64>(),
        flips in (any::<u64>(), 0u64..4),
    ) {
        let s = &mut seed.clone();
        let n = 1 + (splitmix(s) % 6) as usize;
        let mut log = WalLog::default();
        let mut entries = Vec::new();
        let mut boundaries = vec![0usize];
        for i in 0..n {
            let klen = 1 + (splitmix(s) % 8) as usize;
            let vlen = (splitmix(s) % 24) as usize;
            let entry = WalEntry {
                key: Rc::from(format!("{:0>width$}", i, width = klen)),
                version: i as u64 + 1,
                bytes: Bytes::from(vec![splitmix(s) as u8; vlen]),
                visible_at: SimTime::from_millis(i as u64),
                committed_at: SimTime::from_millis(i as u64),
            };
            log.append(entry.clone());
            boundaries.push(log.byte_len());
            entries.push(entry);
        }
        let mut raw = log.as_bytes().to_vec();
        raw.truncate((cut % (raw.len() as u64 + 1)) as usize);
        let (flip_seed, flip_count) = flips;
        let f = &mut flip_seed.clone();
        for _ in 0..flip_count {
            if raw.is_empty() {
                break;
            }
            let at = (splitmix(f) % raw.len() as u64) as usize;
            raw[at] ^= 1 << (splitmix(f) % 8);
        }
        let scan = scan_frames(&raw, true);
        // The verified prefix always ends on a frame boundary of the
        // original log (damage never shifts framing backwards)…
        prop_assert!(scan.verified_len <= raw.len());
        prop_assert!(boundaries.contains(&scan.verified_len));
        // …a fault pinpoints exactly where verification stopped…
        if let Some(fault) = scan.fault {
            prop_assert_eq!(fault.offset, scan.verified_len);
        } else {
            prop_assert_eq!(scan.verified_len, raw.len());
        }
        // …and everything the scan *does* accept is the original data.
        prop_assert!(scan.entries.len() <= entries.len());
        for (got, want) in scan.entries.iter().zip(entries.iter()) {
            prop_assert_eq!(&got.key, &want.key);
            prop_assert_eq!(got.version, want.version);
            prop_assert_eq!(&got.bytes, &want.bytes);
            prop_assert_eq!(got.visible_at, want.visible_at);
            prop_assert_eq!(got.committed_at, want.committed_at);
        }
    }
}

/// Determinism: the same storm replayed from the same seed produces the
/// same outcome down to every stored byte and every WAL footprint — the
/// corruption plane rides the fault plan's determinism, so chaos seeds
/// found by the soak reproduce exactly.
#[test]
fn identical_seeds_replay_to_identical_outcomes() {
    let p = params_from_seed(0xA11CE);
    let a = run_storm(&p, true);
    let b = run_storm(&p, true);
    assert_eq!(a, b);
    assert_eq!(a.corrupt_serves, 0);
    assert!(a.converged_bytes);
}

/// Shared scenario for the ablation: three replicated keys, bit rot on the
/// US log at 4 s, and a crash window at [5 s, 8 s) that forces the damaged
/// bytes through restart replay. Only `verify` differs between the runs.
fn bitflip_then_crash(verify: bool) -> (Sim, KvStore) {
    let sim = Sim::new(27);
    let net = Rc::new(Network::global_triangle());
    let store = KvStore::new(&sim, net, "db", &REGIONS, fast_profile());
    store.set_recovery(RecoveryConfig {
        verify_checksums: verify,
        ..RecoveryConfig::default()
    });
    let s = store.clone();
    sim.block_on(async move {
        for (k, v) in [
            ("k1", &b"value-one"[..]),
            ("k2", &b"value-two"[..]),
            ("k3", &b"value-three"[..]),
        ] {
            let ver = s.put(EU, k, Bytes::copy_from_slice(v)).await.unwrap();
            s.wait_visible(US, k, ver).await.unwrap();
            s.wait_visible(SG, k, ver).await.unwrap();
        }
    });
    sim.faults().schedule(
        SimTime::from_secs(4),
        SimTime::from_secs(5),
        FaultKind::DiskFault {
            store: "db".into(),
            region: US,
            fault: DiskFaultKind::BitFlip { offset_seed: 3 },
        },
    );
    sim.faults().schedule(
        SimTime::from_secs(5),
        SimTime::from_secs(8),
        FaultKind::ReplicaCrash {
            store: "db".into(),
            region: US,
        },
    );
    sim.run_until(SimTime::from_secs(9));
    (sim, store)
}

/// The ablation the checksums exist for: with `verify_checksums: false` the
/// identical damaged log replays without a second look — no quarantine, no
/// refusal, scrub blind — and re-enabling verification exposes the
/// corruption that was being served. Fully deterministic, so the contrast
/// is not luck.
#[test]
fn checksum_ablation_accepts_the_damage_verification_refuses() {
    // Verification on: restart replay catches the flip, quarantines the
    // replica, and reads refuse loudly until repair rejoins it.
    let (sim, store) = bitflip_then_crash(true);
    assert_eq!(store.replica_health(US), ReplicaHealth::Tainted);
    let s = store.clone();
    sim.block_on(async move {
        assert!(matches!(
            s.get(US, "k1").await,
            Err(StoreError::IntegrityFault { .. })
        ));
    });

    // Verification off: the same bytes replay as truth. Nothing notices.
    let (sim, store) = bitflip_then_crash(false);
    assert_eq!(
        store.replica_health(US),
        ReplicaHealth::Healthy,
        "the ablated plane saw nothing wrong"
    );
    let s = store.clone();
    sim.block_on(async move {
        s.get(US, "k1")
            .await
            .expect("no quarantine ever happened: the read is served");
    });
    // Scrub is equally blind with verification off…
    let blind = store.scrub_sweep();
    assert_eq!(blind.quarantined, 0, "scrub without checksums sees nothing");
    // …but the damage was there all along: flip verification back on and
    // the very next scrub finds what the ablated plane was serving.
    store.set_recovery(RecoveryConfig::default());
    let seeing = store.scrub_sweep();
    assert!(
        seeing.quarantined + seeing.torn_tails > 0 || !store.converged_bytes(),
        "re-enabled verification must expose the silently accepted damage"
    );
}

/// 50-seed soak for the `chaos-soak` CI job (`--ignored`): the no-corrupt-
/// serves + byte-convergence property over a wider randomized sweep than the
/// tier-1 proptest budget.
#[test]
#[ignore = "soak: run via `cargo test --test integrity_properties -- --ignored`"]
fn corruption_storm_soak_50_seeds() {
    for seed in 0..50u64 {
        let p = params_from_seed(seed);
        assert_storm_safe(&p);
    }
}

//! Property tests for `barrier` over the real simulated stores: whatever the
//! replication delays, once a barrier on a lineage returns, every dependency
//! is visible in the caller's region, and the subsequent reads succeed.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, UnknownStorePolicy};
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use bytes::Bytes;
use proptest::prelude::*;

fn profile(median_ms: f64, sigma: f64) -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::lognormal_ms(median_ms.max(0.1), sigma),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(50.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any mix of stores with arbitrary replication speeds, any number of
    /// writes: after barrier, every read in the remote region observes a
    /// value at least as new as the written version.
    #[test]
    fn barrier_implies_visibility(
        seed in any::<u64>(),
        store_medians in proptest::collection::vec((1.0f64..5_000.0, 0.1f64..1.2), 1..4),
        writes in proptest::collection::vec((0usize..3, 0u8..6), 1..12),
        drop_p in 0.0f64..0.5,
    ) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let stores: Vec<KvStore> = store_medians
            .iter()
            .enumerate()
            .map(|(i, (m, s))| {
                let st = KvStore::new(&sim, net.clone(), format!("store-{i}"), &[EU, US], profile(*m, *s));
                st.set_drop_probability(drop_p);
                st
            })
            .collect();
        let shims: Vec<KvShim> = stores.iter().map(|s| KvShim::new(s.clone())).collect();
        let mut ap = Antipode::new(sim.clone()).with_policy(UnknownStorePolicy::Fail);
        for shim in &shims {
            ap.register(Rc::new(shim.clone()));
        }

        let shims2 = shims.clone();
        let writes2 = writes.clone();
        let n_stores = stores.len();
        let ok = sim.clone().block_on(async move {
            let mut lineage = Lineage::new(LineageId(1));
            let mut written: Vec<(usize, String, u64)> = Vec::new();
            for (store_idx, key) in &writes2 {
                let idx = *store_idx % n_stores;
                let key = format!("k{key}");
                let wid = shims2[idx]
                    .write(EU, &key, Bytes::from_static(b"v"), &mut lineage)
                    .await
                    .expect("EU configured");
                written.push((idx, key, wid.version()));
            }
            ap.barrier(&lineage, US).await.expect("barrier succeeds");
            // Every write must now be visible in the US.
            for (idx, key, version) in written {
                let got = shims2[idx].store().get_sync(US, &key);
                match got {
                    Some(v) if v.version >= version => {}
                    other => return Err(format!("{key} at store {idx}: {other:?} < v{version}")),
                }
            }
            Ok(())
        });
        prop_assert!(ok.is_ok(), "{:?}", ok.err());
    }

    /// Dry-run never blocks, and its verdict agrees with `is_visible`.
    #[test]
    fn dry_run_matches_visibility(
        seed in any::<u64>(),
        median_ms in 100.0f64..10_000.0,
        probe_after_ms in 0u64..20_000,
    ) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "db", &[EU, US], profile(median_ms, 0.5));
        let shim = KvShim::new(store.clone());
        let mut ap = Antipode::new(sim.clone());
        ap.register(Rc::new(shim.clone()));

        let shim2 = shim.clone();
        let lineage = sim.clone().block_on(async move {
            let mut l = Lineage::new(LineageId(1));
            shim2.write(EU, "k", Bytes::from_static(b"v"), &mut l).await.unwrap();
            l
        });
        sim.run_for(Duration::from_millis(probe_after_ms));
        let before = sim.now();
        let report = ap.dry_run(&lineage, US);
        prop_assert_eq!(sim.now(), before, "dry-run must not advance time");
        let dep = lineage.deps().next().unwrap();
        let visible = shim.store().is_visible(US, dep.key(), dep.version());
        prop_assert_eq!(report.is_satisfied(), visible);
        prop_assert_eq!(report.visible.len() + report.unmet.len(), 1);
    }

    /// barrier_with_timeout: short timeouts report the unmet dependency;
    /// generous timeouts succeed. Either way the clock never exceeds
    /// write-time + timeout before returning on failure.
    #[test]
    fn barrier_timeout_semantics(seed in any::<u64>(), timeout_ms in 1u64..30_000) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        // Replication takes ~10 s.
        let store = KvStore::new(&sim, net, "db", &[EU, US], profile(10_000.0, 0.05));
        let shim = KvShim::new(store.clone());
        let mut ap = Antipode::new(sim.clone());
        ap.register(Rc::new(shim.clone()));

        let shim2 = shim.clone();
        let res = sim.clone().block_on(async move {
            let mut l = Lineage::new(LineageId(1));
            shim2.write(EU, "k", Bytes::from_static(b"v"), &mut l).await.unwrap();
            ap.barrier_with_timeout(&l, US, Duration::from_millis(timeout_ms)).await
        });
        match res {
            Ok(report) => prop_assert!(report.blocked <= Duration::from_millis(timeout_ms)),
            Err(antipode::BarrierError::Timeout { unmet }) => prop_assert_eq!(unmet.len(), 1),
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }
}

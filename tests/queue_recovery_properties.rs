//! Queue-family recovery parity: the broker side of
//! `recovery_properties.rs`. Since both store families run on the one
//! substrate engine, queue brokers now carry the full recovery plane — WAL
//! crash-restart, hinted handoff, anti-entropy — and must satisfy the same
//! convergence property the KV stores do: for any randomized *bounded* fault
//! plan (per-broker replica crashes, a broker outage, an EU↔US partition,
//! delivery drops), every broker replica converges on the full message log,
//! no hint is stranded, and the checker sees zero XCY violations once the
//! storm passes.
//!
//! The deterministic ablation reruns one plan with
//! [`RecoveryConfig::disabled`] and shows the brokers are then *not*
//! eventually consistent — the parity this PR exists to establish.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, BarrierOutcome, ConsistencyChecker};
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{FaultKind, Network, Region, Sim, SimTime};
use antipode_store::queue::{QueueProfile, QueueStore};
use antipode_store::shim::QueueShim;
use antipode_store::{RecoveryConfig, RepairConfig};
use bytes::Bytes;
use proptest::prelude::*;

const BROKERS: [&str; 3] = ["sns", "amq", "rabbit"];
const REGIONS: [Region; 3] = [EU, US, SG];

fn fast_profile() -> QueueProfile {
    QueueProfile {
        local_publish: Dist::constant_ms(1.0),
        delivery: Dist::constant_ms(100.0),
        local_delivery: Dist::constant_ms(2.0),
        rtt_hops: 1.0,
    }
}

/// Parameters of one randomized broker-recovery scenario. Every window is
/// bounded, so the plan always heals; the property is convergence after.
#[derive(Clone, Debug)]
struct QueueRecoveryParams {
    seed: u64,
    /// Per-broker `(start_ms, len_ms, region_index)` replica-crash window.
    crashes: [(u64, u64, u8); 3],
    /// `(start_ms, len_ms)` of a full outage of the first broker.
    outage: (u64, u64),
    /// `(start_ms, len_ms)` of a US↔EU partition.
    partition: (u64, u64),
    /// Per-broker delivery drop probability (active for the first 5 s).
    drops: (f64, f64, f64),
}

/// What one scenario produced.
#[derive(Debug)]
struct QueueRecoveryOutcome {
    converged: bool,
    pending_hints: usize,
    rearms: usize,
    violations: usize,
}

/// Builds three brokers, injects the plan, publishes through lineage-carrying
/// shims, and runs to quiescence. `recover` toggles the whole plane exactly
/// like the KV harness.
fn run_queue_recovery(p: &QueueRecoveryParams, recover: bool) -> QueueRecoveryOutcome {
    let sim = Sim::new(p.seed);
    let net = Rc::new(Network::global_triangle());
    let faults = sim.faults();
    faults.schedule(
        SimTime::from_millis(p.outage.0),
        SimTime::from_millis(p.outage.0 + p.outage.1),
        FaultKind::QueueOutage {
            broker: BROKERS[0].to_string(),
        },
    );
    faults.schedule(
        SimTime::from_millis(p.partition.0),
        SimTime::from_millis(p.partition.0 + p.partition.1),
        FaultKind::Partition { a: EU, b: US },
    );
    let drops = [p.drops.0, p.drops.1, p.drops.2];
    let mut ap = Antipode::new(sim.clone());
    let mut shims = Vec::new();
    let mut brokers = Vec::new();
    for (i, name) in BROKERS.iter().enumerate() {
        let (crash_start, crash_len, region_ix) = p.crashes[i];
        faults.schedule(
            SimTime::from_millis(crash_start),
            SimTime::from_millis(crash_start + crash_len),
            FaultKind::ReplicaCrash {
                store: name.to_string(),
                region: REGIONS[region_ix as usize % REGIONS.len()],
            },
        );
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::DeliveryDrop {
                broker: name.to_string(),
                probability: drops[i],
            },
        );
        let q = QueueStore::new(&sim, net.clone(), *name, &REGIONS, fast_profile());
        if recover {
            q.enable_anti_entropy(RepairConfig {
                period: Duration::from_secs(1),
                horizon: Some(SimTime::from_secs(120)),
            });
        } else {
            q.set_recovery(RecoveryConfig::disabled());
        }
        let shim = QueueShim::new(q.clone());
        ap.register(Rc::new(shim.clone()));
        shims.push(shim);
        brokers.push(q);
    }
    let checker = ConsistencyChecker::new(ap.clone());
    let sim2 = sim.clone();
    let faults2 = faults.clone();
    let (rearms, violations) = sim.block_on(async move {
        let sim = sim2;
        let faults = faults2;
        // Publishes land in EU at t ≈ 0. Crash windows open at ≥ 500 ms and
        // the broker outage at ≥ 500 ms, so the 1 ms commits are clean.
        let mut lineage = Lineage::new(LineageId(1));
        for shim in &shims {
            for payload in [&b"m1"[..], &b"m2"[..]] {
                shim.publish(EU, Bytes::copy_from_slice(payload), &mut lineage)
                    .await
                    .expect("EU brokers are healthy while the publishes land");
            }
        }
        if !recover {
            // Ablation: no barrier — it would block forever on a delivery
            // the disabled plane dropped.
            return (0usize, 0usize);
        }
        // Mid-chaos budgeted barrier over the queue deliveries: degrade as
        // often as the storm forces, re-arm, require eventual completion.
        let mut rearms = 0usize;
        let budget = Duration::from_millis(500);
        let mut outcome = ap
            .barrier_budget(&lineage, US, budget)
            .await
            .expect("all brokers are registered");
        while let BarrierOutcome::Degraded(d) = outcome {
            rearms += 1;
            assert!(
                rearms < 512,
                "budgeted barrier never completed: {} deps still unmet",
                d.unmet.len()
            );
            outcome = ap
                .rearm(&d, US, Some(budget))
                .await
                .expect("re-arming a degraded barrier is always safe");
        }
        // Let the plan play out fully (a later crash may wipe a replica the
        // barrier already observed; WAL replay restores it).
        let mut at = sim.now();
        while let Some(t) = faults.next_transition_after(at) {
            sim.sleep_until(t).await;
            at = t;
        }
        ap.barrier(&lineage, US)
            .await
            .expect("post-storm barrier completes");
        let dry = checker.checkpoint("consumer:post-storm", &lineage, US);
        (rearms, dry.unmet.len())
    });
    sim.run();
    QueueRecoveryOutcome {
        converged: brokers.iter().all(|q| q.converged()),
        pending_hints: brokers.iter().map(|q| q.pending_hints()).sum(),
        rearms,
        violations,
    }
}

// splitmix64: deterministic parameter derivation for the soak.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn params_from_seed(seed: u64) -> QueueRecoveryParams {
    let s = &mut seed.clone();
    fn window(s: &mut u64, start_max: u64, len_min: u64, len_max: u64) -> (u64, u64) {
        (
            splitmix(s) % start_max,
            len_min + splitmix(s) % (len_max - len_min),
        )
    }
    fn crash(s: &mut u64) -> (u64, u64, u8) {
        let (start, len) = window(s, 5_500, 200, 5_000);
        (start + 500, len, (splitmix(s) % 3) as u8)
    }
    fn drop01(s: &mut u64) -> f64 {
        (splitmix(s) % 1000) as f64 / 1000.0
    }
    let crashes = [crash(s), crash(s), crash(s)];
    let (outage_start, outage_len) = window(s, 4_000, 500, 6_000);
    QueueRecoveryParams {
        seed,
        crashes,
        outage: (outage_start + 500, outage_len),
        partition: window(s, 4_000, 500, 8_000),
        drops: (drop01(s), drop01(s), drop01(s)),
    }
}

fn assert_recovers(p: &QueueRecoveryParams) {
    let out = run_queue_recovery(p, true);
    assert!(out.converged, "scenario {p:?} did not converge: {out:?}");
    assert_eq!(
        out.pending_hints, 0,
        "scenario {p:?} left hints queued: {out:?}"
    );
    assert_eq!(
        out.violations, 0,
        "scenario {p:?} violated XCY post-storm: {out:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Queue-family parity property: any bounded broker storm — per-broker
    /// replica crashes in any region, a full outage of one broker, an EU↔US
    /// partition, lossy delivery — heals into a state where every broker
    /// replica holds the full message log, no hint is stranded, the budgeted
    /// barrier completed, and the checker sees zero XCY violations.
    #[test]
    fn randomized_broker_storms_converge_with_recovery_enabled(
        seed in any::<u64>(),
        crash_a in (500u64..6000, 200u64..5000, 0u8..3),
        crash_b in (500u64..6000, 200u64..5000, 0u8..3),
        crash_c in (500u64..6000, 200u64..5000, 0u8..3),
        outage in (500u64..4000, 500u64..6000),
        partition in (0u64..4000, 500u64..8000),
        drops in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
    ) {
        let p = QueueRecoveryParams {
            seed,
            crashes: [crash_a, crash_b, crash_c],
            outage,
            partition,
            drops,
        };
        let out = run_queue_recovery(&p, true);
        prop_assert!(out.converged, "scenario {:?} did not converge: {:?}", p, out);
        prop_assert_eq!(out.pending_hints, 0, "stranded hints in {:?}", p);
        prop_assert_eq!(out.violations, 0, "XCY violation in {:?}", p);
        prop_assert!(out.rearms < 512, "barrier re-armed unboundedly in {:?}", p);
    }
}

/// Deterministic ablation: the same storm that converges with the plane on
/// leaves broker replicas permanently stale with it off — queue stores used
/// to live in this ablated world unconditionally.
#[test]
fn disabled_recovery_demonstrably_fails_to_converge() {
    let p = QueueRecoveryParams {
        seed: 7,
        crashes: [(500, 1000, 0), (700, 1000, 1), (900, 1000, 2)],
        outage: (1000, 2000),
        partition: (0, 3000),
        drops: (0.0, 0.0, 0.0),
    };
    let bare = run_queue_recovery(&p, false);
    assert!(
        !bare.converged,
        "without WAL/handoff/anti-entropy the suppressed deliveries must be lost: {bare:?}"
    );
    let recovered = run_queue_recovery(&p, true);
    assert!(
        recovered.converged,
        "the identical storm converges once the recovery plane is on: {recovered:?}"
    );
    assert_eq!(recovered.violations, 0);
}

/// 50-seed soak for the `chaos-soak` CI job (`--ignored`).
#[test]
#[ignore = "soak: run via `cargo test --test queue_recovery_properties -- --ignored`"]
fn broker_convergence_soak_50_seeds() {
    for seed in 0..50u64 {
        let p = params_from_seed(seed);
        assert_recovers(&p);
    }
}

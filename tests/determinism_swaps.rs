//! Determinism regression tests for the `HashMap`→`BTreeMap` swaps enforced
//! by `antipode-lint` rule D1. Each test pins the property the swap bought:
//! the observable order no longer depends on hash-seed or insertion history,
//! only on keys and the simulation seed. Every scenario is run twice —
//! with state populated in *different* orders — and must replay
//! identically; a seeded-hash container would scramble one of the runs.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, TraceEvent};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::probe::{VisibilityEvent, VisibilityProbe};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use antipode_store::{QueueProfile, QueueStore};
use bytes::Bytes;

/// Consumer-group delivery order (`queue.rs groups` map): the original bug —
/// `HashMap::values_mut()` iteration order escaped into the order consumer
/// tasks woke. With `BTreeMap` the hand-off order is the lexicographic group
/// order, regardless of the order groups joined.
#[test]
fn queue_group_handoff_order_is_join_order_independent() {
    fn run(join_order: &[&str]) -> Vec<(String, u64)> {
        let sim = Sim::new(42);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(&sim, net, "amq", &[EU], QueueProfile::default());
        let log: Rc<RefCell<Vec<(String, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for group in join_order {
            let consumer = q.join_group(EU, *group).expect("EU configured");
            let log = log.clone();
            let group = group.to_string();
            sim.spawn(async move {
                loop {
                    let msg = consumer.take().await;
                    log.borrow_mut().push((group.clone(), msg.id));
                }
            });
        }
        let q2 = q.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            for _ in 0..3 {
                q2.publish(EU, Bytes::from_static(b"m")).await.expect("up");
                sim2.sleep(Duration::from_millis(50)).await;
            }
        });
        sim.run_for(Duration::from_secs(5));
        let out = log.borrow().clone();
        out
    }

    let a = run(&["zeta", "alpha", "mid"]);
    let b = run(&["mid", "zeta", "alpha"]);
    assert!(!a.is_empty(), "consumers must have received messages");
    assert_eq!(a, b, "group hand-off order must not depend on join order");
}

/// Fault-plane maps (`fault.rs repl_drop`/`repl_stalled`/…): querying the
/// plan must give identical answers however the schedule was populated.
#[test]
fn fault_plan_queries_are_schedule_order_independent() {
    fn run(store_order: &[&str]) -> Vec<(String, String)> {
        let sim = Sim::new(7);
        let faults = sim.faults();
        for (i, store) in store_order.iter().enumerate() {
            faults.schedule(
                SimTime::ZERO,
                SimTime::from_secs(2),
                FaultKind::ReplicationDrop {
                    store: store.to_string(),
                    probability: 0.1 * (i + 1) as f64,
                },
            );
            faults.schedule(
                SimTime::from_millis(100),
                SimTime::from_secs(1),
                FaultKind::ReplicationStall {
                    store: store.to_string(),
                    region: US,
                },
            );
        }
        let mut probes = Vec::new();
        for store in ["s-a", "s-b", "s-c"] {
            for at_ms in [0u64, 150, 1500, 2500] {
                let at = SimTime::from_millis(at_ms);
                probes.push((
                    format!("{store}@{at_ms}"),
                    format!(
                        "drop={:.2} stalled={}",
                        faults.replication_drop(at, store),
                        faults.replication_stalled(at, store, US)
                    ),
                ));
            }
        }
        probes
    }

    let a = run(&["s-a", "s-b", "s-c"]);
    let b = run(&["s-c", "s-a", "s-b"]);
    // Same stores, same windows — only the per-store probabilities follow
    // the schedule, so compare the stall answers plus full-run stability.
    let stalls = |v: &[(String, String)]| {
        v.iter()
            .map(|(k, s)| (k.clone(), s.split_whitespace().nth(1).unwrap().to_string()))
            .collect::<Vec<_>>()
    };
    assert_eq!(stalls(&a), stalls(&b));
    assert_eq!(a, run(&["s-a", "s-b", "s-c"]), "same schedule must replay");
}

/// Executor task map (`executor.rs tasks`): tasks that become runnable at
/// the same instant complete in spawn order, run after run.
#[test]
fn executor_wakeup_order_is_deterministic() {
    fn run() -> Vec<u32> {
        let sim = Sim::new(3);
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for id in 0..16u32 {
            let sim2 = sim.clone();
            let order = order.clone();
            sim.spawn(async move {
                // All sleepers share one deadline: ties must break by task id.
                sim2.sleep(Duration::from_millis(10)).await;
                order.borrow_mut().push(id);
            });
        }
        sim.run();
        let out = order.borrow().clone();
        out
    }
    let first = run();
    assert_eq!(first.len(), 16);
    assert_eq!(
        first,
        run(),
        "same-deadline wakeups must replay identically"
    );
}

/// Replica map (`replica.rs replicas` + per-replica `data`): the probe
/// stream — every apply, across regions and keys — is identical however
/// the keys were written, and identical across runs.
#[test]
fn replica_apply_stream_is_deterministic() {
    fn run(key_order: &[&str]) -> Vec<String> {
        let sim = Sim::new(11);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(
            &sim,
            net,
            "db",
            &[EU, US, SG],
            KvProfile {
                local_write: Dist::constant_ms(1.0),
                local_read: Dist::constant_ms(0.5),
                replication: Dist::constant_ms(80.0),
                rtt_hops: 1.0,
                retry_interval: Dist::constant_ms(200.0),
            },
        );
        let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let log = log.clone();
            let probe: VisibilityProbe = Rc::new(move |e: &VisibilityEvent| {
                if let VisibilityEvent::KvApplied {
                    store,
                    region,
                    key,
                    watermark,
                    at,
                } = e
                {
                    log.borrow_mut().push(format!(
                        "{store}/{region:?}/{key}@{watermark}:{}",
                        at.as_nanos()
                    ));
                }
            });
            store.set_probe(Some(probe));
        }
        let shim = KvShim::new(store);
        let keys: Vec<String> = key_order.iter().map(|k| k.to_string()).collect();
        sim.clone().block_on(async move {
            let mut lin = antipode::Lineage::new(antipode::LineageId(1));
            for k in &keys {
                shim.write(EU, k, Bytes::from_static(b"v"), &mut lin)
                    .await
                    .expect("EU configured");
            }
        });
        sim.run();
        let mut out = log.borrow().clone();
        // Writes happen in program order; compare the *set* of applies for
        // order-independence and the raw stream for replay stability.
        out.sort();
        out
    }
    let a = run(&["k-z", "k-a", "k-m"]);
    let b = run(&["k-z", "k-a", "k-m"]);
    assert_eq!(a, b, "same run must replay identically");
    assert_eq!(a.len(), 9, "3 keys × 3 regions must all apply");
}

/// Shim registry (`registry.rs`): `names()` reports the same sorted set
/// however registration interleaved, and lookups are unaffected.
#[test]
fn registry_names_are_registration_order_independent() {
    fn run(order: &[&str]) -> Vec<String> {
        let sim = Sim::new(1);
        let net = Rc::new(Network::global_triangle());
        let mut ap = Antipode::new(sim.clone());
        for name in order {
            let store = KvStore::new(&sim, net.clone(), *name, &[EU], KvProfile::default());
            ap.register(Rc::new(KvShim::new(store)));
        }
        ap.registry()
            .names()
            .into_iter()
            .map(|n| n.to_string())
            .collect()
    }
    let a = run(&["zeta", "alpha", "mid"]);
    let b = run(&["mid", "zeta", "alpha"]);
    assert_eq!(a, b);
    assert_eq!(a, vec!["alpha", "mid", "zeta"]);
}

/// The race-detector trace types round-trip through the probe plumbing the
/// cross-validation harness uses: an event's instant survives conversion.
#[test]
fn trace_event_instants_are_preserved() {
    let at = SimTime::from_millis(1234);
    let e = TraceEvent::KvApplied {
        store: "db".into(),
        region: US,
        key: "k".into(),
        watermark: 9,
        at,
    };
    assert_eq!(e.at(), at);
}

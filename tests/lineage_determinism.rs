//! Determinism of the zero-copy lineage plane.
//!
//! The interner assigns [`StoreId`]s in first-intern order and the lineage
//! caches are pure functions of the dep set, so two threads (each with a
//! fresh thread-local interner) running the same seeded workload must
//! observe identical ids, identical wire bytes, and identical lineage-plane
//! stats. This is what keeps the chaos plane's byte-for-byte reproducibility
//! intact across the perf refactor.

use std::thread;

use antipode_lineage::WriteId;
use antipode_lineage::{interner, stats, Baggage, Lineage, LineageId, LineageStats, StoreId};

/// A fixed intern sequence with re-interns mixed in.
const NAMES: [&str; 7] = [
    "post-storage-mongodb",
    "write-home-timeline-rabbitmq",
    "post-storage-mongodb",
    "user-timeline-mongodb",
    "media-mongodb",
    "write-home-timeline-rabbitmq",
    "social-graph-redis",
];

fn intern_sequence() -> Vec<(String, u32)> {
    NAMES
        .iter()
        .map(|n| (n.to_string(), StoreId::intern(n).as_u32()))
        .collect()
}

/// splitmix64, so the workload needs no RNG dependency.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs a fixed hop workload and returns everything observable about it
/// that must be thread- and run-independent.
fn workload(seed: u64) -> (Vec<String>, Vec<u8>, String, LineageStats) {
    stats::reset();
    let mut state = seed;
    let mut lineage = Lineage::new(LineageId(seed));
    for hop in 0..64u64 {
        let r = mix(&mut state);
        let store = NAMES[(r % NAMES.len() as u64) as usize];
        lineage.append(WriteId::new(store, format!("key-{}", r >> 32), hop + 1));
        let mut bag = Baggage::new();
        bag.set_lineage(&lineage);
        let header = bag.to_header();
        lineage = Baggage::from_header(&header)
            .lineage()
            .expect("hop round-trips");
    }
    let interned: Vec<String> = interner::snapshot()
        .into_iter()
        .map(|n| n.to_string())
        .collect();
    let mut bag = Baggage::new();
    bag.set_lineage(&lineage);
    (
        interned,
        lineage.serialize(),
        bag.to_header(),
        stats::snapshot(),
    )
}

#[test]
fn interner_ids_are_deterministic_across_threads() {
    let a = thread::spawn(intern_sequence).join().unwrap();
    let b = thread::spawn(intern_sequence).join().unwrap();
    assert_eq!(a, b, "first-intern order must fix the id assignment");
    // Re-interns reuse the first id.
    assert_eq!(a[0].1, a[2].1);
    assert_eq!(a[1].1, a[5].1);
}

#[test]
fn fixed_workload_is_identical_across_threads() {
    let a = thread::spawn(|| workload(0xD15C0)).join().unwrap();
    let b = thread::spawn(|| workload(0xD15C0)).join().unwrap();
    assert_eq!(a.0, b.0, "interned name sequence");
    assert_eq!(a.1, b.1, "final wire bytes");
    assert_eq!(a.2, b.2, "final baggage header");
    assert_eq!(a.3, b.3, "lineage-plane stats");
}

#[test]
fn different_seeds_diverge() {
    // Sanity: the workload actually depends on its seed (guards against a
    // vacuous determinism assertion).
    let a = thread::spawn(|| workload(1)).join().unwrap();
    let b = thread::spawn(|| workload(2)).join().unwrap();
    assert_ne!(a.1, b.1);
}

#[test]
fn serialize_scaling_is_linear() {
    // Regression guard for the old O(deps × stores) string-table scan:
    // encode time is not asserted (wall-clock is machine-dependent), but
    // the byte work is — wire size must grow linearly in deps when the
    // store universe is fixed, and the string table must stay constant.
    let sizes = [64usize, 128, 256, 512];
    let wire: Vec<usize> = sizes
        .iter()
        .map(|&n| {
            let mut l = Lineage::new(LineageId(9));
            for i in 0..n {
                l.append(WriteId::new(
                    NAMES[i % NAMES.len()],
                    format!("key-{i:06}"),
                    i as u64 + 1,
                ));
            }
            l.wire_size()
        })
        .collect();
    // Linear means size = C + k·deps: the marginal per-dep cost between
    // consecutive doublings must stay flat (±25% absorbs varint-width
    // steps), where quadratic growth would double it each time.
    let marginal: Vec<f64> = sizes
        .windows(2)
        .zip(wire.windows(2))
        .map(|(s, w)| (w[1] - w[0]) as f64 / (s[1] - s[0]) as f64)
        .collect();
    for m in marginal.windows(2) {
        let ratio = m[1] / m[0];
        assert!(
            (0.8..=1.25).contains(&ratio),
            "per-dep wire cost must be flat: sizes {wire:?}, marginal {marginal:?}"
        );
    }
}

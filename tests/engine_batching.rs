//! Batching determinism: the engine's batched fan-out (per-(origin, dest)
//! pair queues, coalesced flushes) is a pure mechanical optimization — it
//! must be *trace-invariant*. For any seed and any bounded fault plan, the
//! batched engine and the unbatched ablation (`set_batching(false)`) must
//! produce byte-identical visibility-probe streams and identical checker
//! verdicts. This is the externally-observable form of the argument in
//! `crates/datastores/src/batch.rs`: phase 1 of every send is sampled
//! synchronously at commit in destination order, so the RNG draw sequence —
//! and therefore every apply instant — is independent of how sends are
//! ferried to their destination.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker, Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::probe::{VisibilityEvent, VisibilityProbe};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use antipode_store::{QueueProfile, QueueStore};
use bytes::Bytes;
use proptest::prelude::*;

const REGIONS: [antipode_sim::Region; 3] = [EU, US, SG];

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(200.0),
    }
}

/// Records every probe event as a fully-rendered line (store, region, key,
/// watermark, *and* virtual instant), so any divergence — reordering, a
/// shifted apply time, a dropped event — fails the byte-equality assert.
fn recording_probe(log: &Rc<RefCell<Vec<String>>>) -> VisibilityProbe {
    let log = log.clone();
    Rc::new(move |e: &VisibilityEvent| {
        let line = match e {
            VisibilityEvent::KvApplied {
                store,
                region,
                key,
                watermark,
                at,
            } => format!("kv:{store}/{region:?}/{key}@{watermark}:{}", at.as_nanos()),
            VisibilityEvent::QueueDelivered {
                store,
                region,
                id,
                at,
            } => {
                format!("qd:{store}/{region:?}/{id}:{}", at.as_nanos())
            }
            VisibilityEvent::QueueAcked {
                store,
                region,
                id,
                at,
            } => {
                format!("qa:{store}/{region:?}/{id}:{}", at.as_nanos())
            }
        };
        log.borrow_mut().push(line);
    })
}

/// One randomized scenario: concurrent writer fleet (the shape that actually
/// forms batches — same-instant commits into the same pair queues) under an
/// optional bounded fault plan, followed by per-lineage barriers and a
/// checker checkpoint at the read region.
#[derive(Clone, Debug)]
struct Params {
    seed: u64,
    writers: usize,
    /// `(start_ms, len_ms)` of a US region outage (len 0 = no outage).
    outage: (u64, u64),
    /// `(start_ms, len_ms)` of a US↔EU partition (len 0 = no partition).
    partition: (u64, u64),
    /// Replication drop probability for the first 3 s.
    drop: f64,
    /// Replication stall into US, `[0, len_ms)`.
    stall_ms: u64,
}

/// Runs the scenario with batching on or off and returns the probe trace
/// plus the checker verdict (unmet dependencies after barriers — always 0).
fn run(p: &Params, batched: bool) -> (Vec<String>, usize) {
    let sim = Sim::new(p.seed);
    let net = Rc::new(Network::global_triangle());
    let faults = sim.faults();
    if p.outage.1 > 0 {
        faults.schedule(
            SimTime::from_millis(p.outage.0),
            SimTime::from_millis(p.outage.0 + p.outage.1),
            FaultKind::RegionOutage { region: US },
        );
    }
    if p.partition.1 > 0 {
        faults.schedule(
            SimTime::from_millis(p.partition.0),
            SimTime::from_millis(p.partition.0 + p.partition.1),
            FaultKind::Partition { a: EU, b: US },
        );
    }
    if p.drop > 0.0 {
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_secs(3),
            FaultKind::ReplicationDrop {
                store: "db".into(),
                probability: p.drop,
            },
        );
    }
    if p.stall_ms > 0 {
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_millis(p.stall_ms),
            FaultKind::ReplicationStall {
                store: "db".into(),
                region: US,
            },
        );
    }
    let store = KvStore::new(&sim, net, "db", &REGIONS, fast_profile());
    store.set_batching(batched);
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    store.set_probe(Some(recording_probe(&log)));
    let shim = KvShim::new(store);
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));
    let checker = ConsistencyChecker::new(ap.clone());

    let writers = p.writers;
    let sim2 = sim.clone();
    let violations = sim.block_on(async move {
        let sim = sim2;
        let lineages: Rc<RefCell<Vec<Lineage>>> = Rc::new(RefCell::new(Vec::new()));
        // Concurrent fleet: every writer commits its first put at the same
        // virtual instant (constant local-write latency), so the batched run
        // coalesces `writers` sends per pair queue while the unbatched run
        // ferries them one by one. Writers rotate origins across regions so
        // every (origin, dest) pair sees traffic.
        for w in 0..writers {
            let shim = shim.clone();
            let lineages = lineages.clone();
            sim.spawn_detached(async move {
                let mut lin = Lineage::new(LineageId(w as u64 + 1));
                let origin = REGIONS[w % REGIONS.len()];
                let key = format!("k-{w}");
                for _ in 0..3 {
                    shim.write(origin, &key, Bytes::from_static(b"v"), &mut lin)
                        .await
                        .expect("writer regions are configured");
                }
                lineages.borrow_mut().push(lin);
            });
        }
        // Long enough for every write plus any scheduled fault window.
        sim.sleep(Duration::from_secs(20)).await;
        let lineages = lineages.borrow().clone();
        assert_eq!(lineages.len(), writers, "every writer must finish");
        let mut violations = 0usize;
        for lin in &lineages {
            ap.barrier(lin, US)
                .await
                .expect("bounded chaos is retried, not surfaced");
            violations += checker.checkpoint("post-barrier", lin, US).unmet.len();
        }
        violations
    });
    let trace = log.borrow().clone();
    (trace, violations)
}

/// Quiet-plan equivalence at a size that exercises real coalescing: 24
/// same-instant writers × 3 regions form 24-entry batches per pair queue.
#[test]
fn batched_and_unbatched_traces_match_on_quiet_plan() {
    let p = Params {
        seed: 0xA57,
        writers: 24,
        outage: (0, 0),
        partition: (0, 0),
        drop: 0.0,
        stall_ms: 0,
    };
    let (batched, v1) = run(&p, true);
    let (unbatched, v2) = run(&p, false);
    assert!(
        batched.len() >= p.writers * REGIONS.len(),
        "every write must apply in every region"
    );
    assert_eq!(
        batched, unbatched,
        "fan-out batching must be trace-invariant"
    );
    assert_eq!((v1, v2), (0, 0), "barrier-gated checkpoints must be clean");
}

/// Queue family: publishes fan out through the same pair queues; the
/// delivery/ack probe stream must be identical with batching on or off.
#[test]
fn queue_delivery_trace_is_batching_invariant() {
    fn run_queue(batched: bool) -> Vec<String> {
        let sim = Sim::new(77);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(&sim, net, "amq", &[EU, US, SG], QueueProfile::default());
        q.set_batching(batched);
        let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        q.set_probe(Some(recording_probe(&log)));
        let q2 = q.clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            for _ in 0..4 {
                // Four concurrent publishers per round: same-instant commits
                // into the EU→US and EU→SG pair queues.
                for _ in 0..4 {
                    let q = q2.clone();
                    sim2.spawn_detached(async move {
                        q.publish(EU, Bytes::from_static(b"m"))
                            .await
                            .expect("EU is configured");
                    });
                }
                sim2.sleep(Duration::from_millis(250)).await;
            }
            sim2.sleep(Duration::from_secs(5)).await;
        });
        let out = log.borrow().clone();
        out
    }
    let batched = run_queue(true);
    let unbatched = run_queue(false);
    assert!(!batched.is_empty(), "publishes must deliver");
    assert_eq!(
        batched, unbatched,
        "broker batching must be trace-invariant"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole equivalence, under chaos: any seed, any bounded fault
    /// plan (US outage, US↔EU partition, replication drops, a stall into
    /// US) — the batched and unbatched engines emit the same probe stream
    /// and the checker returns the same (zero) verdict. Faults interleave
    /// with in-flight batches: drops hit phase-1 samples taken at commit,
    /// outages crash-restart replicas mid-flush, partitions park sends —
    /// none of which may depend on the ferrying strategy.
    #[test]
    fn batched_fanout_is_trace_invariant_under_chaos(
        seed in any::<u64>(),
        writers in 3usize..16,
        outage in (0u64..2000, 0u64..4000),
        partition in (0u64..2000, 0u64..4000),
        drop in 0.0f64..0.8,
        stall_ms in 0u64..3000,
    ) {
        let p = Params { seed, writers, outage, partition, drop, stall_ms };
        let (batched, v1) = run(&p, true);
        let (unbatched, v2) = run(&p, false);
        prop_assert_eq!(
            batched, unbatched,
            "batching changed the trace under plan {:?}", p
        );
        prop_assert_eq!(v1, 0, "batched run violated XCY under plan {:?}", p);
        prop_assert_eq!(v2, 0, "unbatched run violated XCY under plan {:?}", p);
    }
}

//! Chaos properties: randomized deterministic fault schedules must never
//! produce an XCY violation on a barrier-gated read, bounded barriers must
//! report exactly the dependencies a fault is holding back, and the same
//! seed plus the same [`antipode_sim::FaultPlan`] must reproduce the run
//! byte for byte.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker};
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::queue::{QueueProfile, QueueStore};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use bytes::Bytes;
use proptest::prelude::*;

const STORES: [&str; 3] = ["db-a", "db-b", "db-c"];

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(200.0),
    }
}

/// Parameters of one randomized chaos scenario. Everything that can vary is
/// in here, so a scenario is replayable from its parameters alone.
#[derive(Clone, Debug)]
struct ChaosParams {
    seed: u64,
    /// `(start_ms, len_ms)` of a US region outage.
    outage: (u64, u64),
    /// `(start_ms, len_ms)` of a US↔EU partition.
    partition: (u64, u64),
    /// Per-store replication drop probability (active for the first 5 s).
    drops: (f64, f64, f64),
    /// Per-store replication stall into US, `[0, len_ms)`.
    stalls: (u64, u64, u64),
}

/// Runs the scenario: three stores, a writer in EU touching each store under
/// one lineage, then a barrier-gated reader in US. Returns the recorded
/// event trace and the number of XCY violations the checker observed after
/// the barrier (which must always be zero).
fn run_chaos(p: &ChaosParams) -> (Vec<(String, u64)>, usize) {
    let sim = Sim::new(p.seed);
    let net = Rc::new(Network::global_triangle());
    let faults = sim.faults();
    faults.schedule(
        SimTime::from_millis(p.outage.0),
        SimTime::from_millis(p.outage.0 + p.outage.1),
        FaultKind::RegionOutage { region: US },
    );
    faults.schedule(
        SimTime::from_millis(p.partition.0),
        SimTime::from_millis(p.partition.0 + p.partition.1),
        FaultKind::Partition { a: EU, b: US },
    );
    let drops = [p.drops.0, p.drops.1, p.drops.2];
    let stalls = [p.stalls.0, p.stalls.1, p.stalls.2];
    let mut shims = Vec::new();
    let mut ap = Antipode::new(sim.clone());
    for (i, name) in STORES.iter().enumerate() {
        let store = KvStore::new(&sim, net.clone(), *name, &[EU, US], fast_profile());
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::ReplicationDrop {
                store: name.to_string(),
                probability: drops[i],
            },
        );
        faults.schedule(
            SimTime::ZERO,
            SimTime::from_millis(stalls[i]),
            FaultKind::ReplicationStall {
                store: name.to_string(),
                region: US,
            },
        );
        let shim = KvShim::new(store);
        ap.register(Rc::new(shim.clone()));
        shims.push(shim);
    }
    let checker = ConsistencyChecker::new(ap.clone());
    let sim2 = sim.clone();
    sim.block_on(async move {
        let sim = sim2;
        let mut trace: Vec<(String, u64)> = Vec::new();
        let mut lineage = Lineage::new(LineageId(1));
        for (i, shim) in shims.iter().enumerate() {
            shim.write(EU, "k", Bytes::from_static(b"v"), &mut lineage)
                .await
                .expect("EU is configured and never down in this scenario");
            trace.push((format!("write:{}", STORES[i]), sim.now().as_nanos()));
        }
        let report = ap
            .barrier(&lineage, US)
            .await
            .expect("transient outages are retried, not surfaced");
        trace.push(("barrier".into(), sim.now().as_nanos()));
        for w in &report.waits {
            trace.push((
                format!("wait:{}:retries={}", w.datastore, w.retries),
                w.blocked.as_nanos() as u64,
            ));
        }
        // The checker re-evaluates the same lineage at the read location:
        // after a barrier, nothing may be unmet.
        let dry = checker.checkpoint("reader:post-barrier", &lineage, US);
        let mut violations = dry.unmet.len();
        // Reads are gated only on the region being up (a down region is an
        // availability fault, not a consistency one) — every dependency the
        // barrier enforced must then be readable.
        let gate = faults.clone();
        faults
            .until_clear(&sim, move |at| gate.region_down(at, US))
            .await;
        for (i, shim) in shims.iter().enumerate() {
            let found = shim
                .read(US, "k")
                .await
                .expect("US is up past the gate")
                .is_some();
            if !found {
                violations += 1;
            }
            trace.push((format!("read:{}:{found}", STORES[i]), sim.now().as_nanos()));
        }
        (trace, violations)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole property: whatever bounded chaos the plan throws at the
    /// stack — a US outage, a US↔EU partition, replication drops and stalls
    /// on three independent stores — a barrier-gated read never observes an
    /// XCY violation, and the passive checker agrees.
    #[test]
    fn randomized_fault_plans_never_violate_barrier_gated_reads(
        seed in any::<u64>(),
        outage in (0u64..4000, 500u64..8000),
        partition in (0u64..4000, 500u64..8000),
        drops in (0.0f64..0.9, 0.0f64..0.9, 0.0f64..0.9),
        stalls in (0u64..6000, 0u64..6000, 0u64..6000),
    ) {
        let p = ChaosParams { seed, outage, partition, drops, stalls };
        let (_trace, violations) = run_chaos(&p);
        prop_assert_eq!(violations, 0, "chaos scenario {:?} violated XCY", p);
    }

    /// A bounded barrier under a *permanent* fault reports exactly the
    /// dependencies the fault holds back — no more, no less.
    #[test]
    fn bounded_barrier_reports_exactly_the_stalled_store(
        seed in any::<u64>(),
        timeout_ms in 500u64..3000,
    ) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let stalled = KvStore::new(&sim, net.clone(), "db-a", &[EU, US], fast_profile());
        let healthy = KvStore::new(&sim, net, "db-b", &[EU, US], fast_profile());
        // Permanent imperative stall on db-a only.
        sim.faults().stall_replication("db-a", US);
        let a = KvShim::new(stalled);
        let b = KvShim::new(healthy);
        let mut ap = Antipode::new(sim.clone());
        ap.register(Rc::new(a.clone()));
        ap.register(Rc::new(b.clone()));
        let unmet = sim.clone().block_on(async move {
            let mut l = Lineage::new(LineageId(1));
            a.write(EU, "k", Bytes::from_static(b"v"), &mut l).await.unwrap();
            b.write(EU, "k", Bytes::from_static(b"v"), &mut l).await.unwrap();
            match ap
                .barrier_with_timeout(&l, US, Duration::from_millis(timeout_ms))
                .await
            {
                Err(antipode::BarrierError::Timeout { unmet }) => unmet,
                other => panic!("expected a timeout under a permanent stall, got {other:?}"),
            }
        });
        prop_assert_eq!(unmet.len(), 1, "only db-a is held back");
        prop_assert_eq!(&*unmet[0].datastore(), "db-a");
    }

    /// Determinism: the same seed and the same fault plan reproduce the
    /// exact same event trace and experiment outcome.
    #[test]
    fn same_seed_and_plan_reproduce_the_run_exactly(
        seed in any::<u64>(),
        outage in (0u64..4000, 500u64..8000),
        partition in (0u64..4000, 500u64..8000),
        drops in (0.0f64..0.9, 0.0f64..0.9, 0.0f64..0.9),
        stalls in (0u64..6000, 0u64..6000, 0u64..6000),
    ) {
        let p = ChaosParams { seed, outage, partition, drops, stalls };
        let (trace1, v1) = run_chaos(&p);
        let (trace2, v2) = run_chaos(&p);
        prop_assert_eq!(trace1, trace2, "same seed + plan must replay identically");
        prop_assert_eq!(v1, v2);
    }
}

/// A broker crash-restart must not duplicate-deliver a message whose ack
/// raced the outage. The visibility timer fires *inside* the outage window
/// (take ≈ 0s + 4s timeout, outage [3s, 8s)); the consumer's ack lands at
/// 5s, also inside the window. The restarted broker must read the current
/// ack state before deciding to redeliver — deciding mid-crash would requeue
/// a message the group already processed.
#[test]
fn broker_restart_does_not_duplicate_acked_messages() {
    let sim = Sim::new(42);
    let net = Rc::new(Network::global_triangle());
    let q = QueueStore::new(
        &sim,
        net,
        "amq",
        &[EU, US],
        QueueProfile {
            local_publish: Dist::constant_ms(1.0),
            delivery: Dist::constant_ms(80.0),
            local_delivery: Dist::constant_ms(2.0),
            rtt_hops: 1.0,
        },
    );
    q.set_visibility_timeout(Some(Duration::from_secs(4)));
    sim.faults().schedule(
        SimTime::from_secs(3),
        SimTime::from_secs(8),
        FaultKind::QueueOutage {
            broker: "amq".into(),
        },
    );
    let consumer = q.join_group(EU, "workers").unwrap();
    let q2 = q.clone();
    let sim2 = sim.clone();
    let taken: Rc<std::cell::RefCell<Vec<u64>>> = Rc::new(std::cell::RefCell::new(Vec::new()));
    let slot = taken.clone();
    let c2 = consumer.clone();
    sim.spawn(async move {
        let id = q2.publish(EU, Bytes::from_static(b"job")).await.unwrap();
        // Take immediately (arms the 4s visibility timer), process slowly,
        // ack at t = 5s — one second after the timer fired mid-outage.
        let m = c2.take().await;
        assert_eq!(m.id, id);
        slot.borrow_mut().push(m.id);
        sim2.sleep_until(SimTime::from_secs(5)).await;
        c2.ack(&m).unwrap();
    });
    sim.run();
    assert!(
        sim.now() >= SimTime::from_secs(8),
        "the deferred redelivery decision waits for the broker restart"
    );
    assert_eq!(taken.borrow().len(), 1, "message processed exactly once");
    assert!(
        consumer.try_take().is_none(),
        "restarted broker must not redeliver the acked message"
    );
}

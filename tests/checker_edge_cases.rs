//! ConsistencyChecker edge cases: zero-evaluation locations, dependencies
//! on unregistered stores, and `violation_rate` stability under a chaos
//! `FaultPlan` — the same seed must reproduce the same rate exactly.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker, LocationStats};
use antipode_lineage::{Lineage, LineageId, WriteId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use bytes::Bytes;

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(200.0),
    }
}

/// A location with zero evaluations has a violation rate of 0.0 — not NaN,
/// not a division panic — and an empty checker reports an empty summary.
#[test]
fn zero_evaluation_location_has_zero_rate() {
    let stats = LocationStats::default();
    assert_eq!(stats.evaluations, 0);
    assert_eq!(stats.violation_rate(), 0.0);
    assert!(stats.violation_rate().is_finite());

    let sim = Sim::new(1);
    let checker = ConsistencyChecker::new(Antipode::new(sim));
    assert!(checker.checkpoints().is_empty());
    assert!(checker.summary().is_empty());
    assert!(checker.suggested_barriers().is_empty());
}

/// `reset` returns the checker to the zero-evaluation state.
#[test]
fn reset_clears_recorded_evaluations() {
    let sim = Sim::new(2);
    let net = Rc::new(Network::global_triangle());
    let store = KvStore::new(&sim, net, "db", &[EU, US], fast_profile());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(KvShim::new(store.clone())));
    let checker = ConsistencyChecker::new(ap);
    sim.clone().block_on(async move {
        let mut lin = Lineage::new(LineageId(1));
        KvShim::new(store)
            .write(EU, "k", Bytes::from_static(b"v"), &mut lin)
            .await
            .expect("EU configured");
        checker.checkpoint("loc", &lin, US);
        assert_eq!(checker.summary()["loc"].evaluations, 1);
        checker.reset();
        assert!(checker.summary().is_empty());
        assert!(checker.checkpoints().is_empty());
    });
}

/// A dependency on a store with no registered shim is counted in
/// `unknown_deps` — it is neither silently visible nor an unmet violation.
#[test]
fn unknown_store_deps_are_reported_as_unknown() {
    let sim = Sim::new(3);
    let net = Rc::new(Network::global_triangle());
    let store = KvStore::new(&sim, net, "db-a", &[EU, US], fast_profile());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(KvShim::new(store.clone())));
    let checker = ConsistencyChecker::new(ap);
    sim.clone().block_on(async move {
        let mut lin = Lineage::new(LineageId(1));
        let shim = KvShim::new(store);
        let wid = shim
            .write(EU, "k", Bytes::from_static(b"v"), &mut lin)
            .await
            .expect("EU configured");
        // A second dependency written through a store nobody registered.
        let ghost = WriteId::new("ghost-store", "k", 1);
        lin.append(ghost.clone());

        let report = checker.checkpoint("loc", &lin, EU);
        assert!(report.visible.contains(&wid), "registered dep is checked");
        assert_eq!(report.unknown, vec![ghost], "ghost dep lands in unknown");
        assert!(
            !report.unmet.contains(&WriteId::new("ghost-store", "k", 1)),
            "unknown deps must not masquerade as violations"
        );
        let summary = checker.summary();
        assert_eq!(summary["loc"].unknown_deps, 1);
        assert_eq!(summary["loc"].unsatisfied, 0);
    });
}

/// One chaos scenario: N racy reader checkpoints against a replication
/// stream disturbed by drops, stalls, and an outage. Returns the observed
/// violation rate at the reader location.
fn chaos_violation_rate(seed: u64, requests: usize) -> f64 {
    let sim = Sim::new(seed);
    let net = Rc::new(Network::global_triangle());
    let faults = sim.faults();
    faults.schedule(
        SimTime::from_millis(400),
        SimTime::from_millis(1400),
        FaultKind::RegionOutage { region: US },
    );
    faults.schedule(
        SimTime::ZERO,
        SimTime::from_secs(4),
        FaultKind::ReplicationDrop {
            store: "db".to_string(),
            probability: 0.4,
        },
    );
    faults.schedule(
        SimTime::from_millis(1000),
        SimTime::from_millis(2500),
        FaultKind::ReplicationStall {
            store: "db".to_string(),
            region: US,
        },
    );
    let store = KvStore::new(&sim, net, "db", &[EU, US], fast_profile());
    let mut ap = Antipode::new(sim.clone());
    let shim = KvShim::new(store);
    ap.register(Rc::new(shim.clone()));
    let checker = ConsistencyChecker::new(ap);
    for i in 0..requests {
        let sim2 = sim.clone();
        let shim = shim.clone();
        let checker = checker.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(150 * i as u64)).await;
            let mut lin = Lineage::new(LineageId(i as u64));
            shim.write(EU, &format!("k-{i}"), Bytes::from_static(b"v"), &mut lin)
                .await
                .expect("EU configured");
            // Racy read: checkpoint right after the write, no barrier.
            checker.checkpoint("reader:racy", &lin, US);
        });
    }
    sim.run();
    let summary = checker.summary();
    let stats = &summary["reader:racy"];
    assert_eq!(stats.evaluations, requests);
    stats.violation_rate()
}

/// Under a chaos `FaultPlan` the violation rate is a property of the seed:
/// the same seed reproduces it bit-for-bit, different seeds stay in range,
/// and the disturbance is strong enough that some seed actually violates.
#[test]
fn violation_rate_is_stable_per_seed_under_chaos() {
    let mut any_violation = false;
    for seed in [11u64, 12, 13, 14] {
        let a = chaos_violation_rate(seed, 24);
        let b = chaos_violation_rate(seed, 24);
        assert_eq!(a, b, "seed {seed}: violation rate must replay exactly");
        assert!(
            (0.0..=1.0).contains(&a),
            "seed {seed}: rate {a} out of range"
        );
        any_violation |= a > 0.0;
    }
    assert!(any_violation, "chaos plan never produced a violation");
}

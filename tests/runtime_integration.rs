//! Full-stack integration: the post-notification flow built the way a real
//! adopter would wire it — typed RPC endpoints with automatic lineage
//! propagation, a work-queue consumer group, datastore shims, and a
//! reader-side barrier. Mirrors the paper's Fig 4 end-to-end flow ①–⑧.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, LineageIdGen};
use antipode_runtime::rpc::{
    call_and_absorb, BreakerConfig, BreakerState, CircuitBreaker, Endpoint, RetryPolicy, RpcError,
};
use antipode_runtime::{RequestCtx, Runtime, Service, ServiceSpec};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::{FaultKind, RateCounter, Sim, SimTime};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{MySql, Sns};
use bytes::Bytes;

fn run_flow(antipode_enabled: bool, requests: usize) -> RateCounter {
    let sim = Sim::new(0x0F1);
    let net = Rc::new(Network::global_triangle());
    let rt = Runtime::new(&sim, net.clone());

    let posts = MySql::new(&sim, net.clone(), "post-storage", &[EU, US]);
    let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);
    let post_shim = KvShim::new(posts.store().clone());
    let notif_shim = QueueShim::new(notifier.queue().clone());

    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(post_shim.clone()));
    ap.register(Rc::new(notif_shim.clone()));

    // ② post-storage service: writes the post through the shim; the write
    // identifier flows back to the caller in the response baggage.
    let post_storage_ep = {
        let shim = post_shim.clone();
        Endpoint::new(
            &rt,
            Service::new(&sim, ServiceSpec::new("post-storage", EU)),
            move |post_id: u64, mut ctx: RequestCtx| {
                let shim = shim.clone();
                async move {
                    let mut lineage = ctx
                        .lineage
                        .stop()
                        .unwrap_or_else(|| antipode::Lineage::new(antipode::LineageId(post_id)));
                    shim.write(
                        EU,
                        &format!("post-{post_id}"),
                        Bytes::from_static(b"body"),
                        &mut lineage,
                    )
                    .await
                    .expect("EU configured");
                    ctx.lineage.adopt(lineage);
                    (post_id, ctx)
                }
            },
        )
    };

    // ④ notifier service: publishes the notification with the lineage.
    let notifier_ep = {
        let shim = notif_shim.clone();
        Endpoint::new(
            &rt,
            Service::new(&sim, ServiceSpec::new("notifier", EU)),
            move |post_id: u64, mut ctx: RequestCtx| {
                let shim = shim.clone();
                async move {
                    let mut lineage = ctx
                        .lineage
                        .stop()
                        .unwrap_or_else(|| antipode::Lineage::new(antipode::LineageId(post_id)));
                    shim.publish(EU, Bytes::from(format!("post-{post_id}")), &mut lineage)
                        .await
                        .expect("EU configured");
                    ctx.lineage.adopt(lineage);
                    ((), ctx)
                }
            },
        )
    };

    // ⑤–⑧ follower-notify: a worker group in the US consuming notifications.
    let violations = Rc::new(RefCell::new(RateCounter::new()));
    for _ in 0..2 {
        let consumer = notifier
            .queue()
            .join_group(US, "follower-notify")
            .expect("US configured");
        let svc = Service::new(&sim, ServiceSpec::new("follower-notify", US));
        let post_shim = post_shim.clone();
        let ap = ap.clone();
        let violations = violations.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            loop {
                let raw = consumer.take().await;
                let env = antipode_store::Envelope::decode(&raw.payload)
                    .expect("publisher used the shim");
                let post_key = String::from_utf8(env.data.to_vec()).expect("payload is a post key");
                svc.process().await;
                if antipode_enabled {
                    // ⑥–⑦ barrier right where the notification is handled.
                    if let Some(lineage) = &env.lineage {
                        ap.barrier(lineage, US).await.expect("shims registered");
                    }
                }
                let found = post_shim
                    .read(US, &post_key)
                    .await
                    .expect("US configured")
                    .is_some();
                violations.borrow_mut().record(!found);
                consumer.ack(&raw).expect("US configured");
                let _ = sim2.now();
            }
        });
    }

    // ① post-upload: the client-facing flow.
    let gen = Rc::new(LineageIdGen::new(1));
    for i in 0..requests {
        let sim2 = sim.clone();
        let post_storage_ep = post_storage_ep.clone();
        let notifier_ep = notifier_ep.clone();
        let gen = gen.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(120 * i as u64)).await;
            let mut ctx = RequestCtx::root(&gen);
            // RPC to post-storage (② ③: updated lineage returns with the
            // response)…
            let id = call_and_absorb(&post_storage_ep, EU, &mut ctx, i as u64).await;
            // …then to the notifier (④), carrying the accumulated lineage.
            call_and_absorb(&notifier_ep, EU, &mut ctx, id).await;
        });
    }

    sim.run();
    let out = *violations.borrow();
    out
}

#[test]
fn baseline_flow_violates() {
    let v = run_flow(false, 120);
    assert_eq!(v.total(), 120, "every notification handled");
    assert!(v.percent() > 50.0, "violations {}%", v.percent());
}

#[test]
fn antipode_flow_is_violation_free() {
    let v = run_flow(true, 120);
    assert_eq!(v.total(), 120);
    assert_eq!(v.hits(), 0);
}

/// A service crash mid-request: the client's timeout/retry/breaker protocol
/// sheds load while the callee is down, recovers once it heals, and the
/// eventual barrier-gated read still observes the write — resilience never
/// comes at the cost of XCY.
#[test]
fn rpc_retries_ride_out_a_service_crash_without_violating_xcy() {
    let sim = Sim::new(0x0F2);
    let net = Rc::new(Network::global_triangle());
    let rt = Runtime::new(&sim, net.clone());
    let posts = MySql::new(&sim, net, "post-storage", &[EU, US]);
    let post_shim = KvShim::new(posts.store().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(post_shim.clone()));

    // The post-storage service is crashed for virtual seconds [1, 20).
    sim.faults().schedule(
        SimTime::from_secs(1),
        SimTime::from_secs(20),
        FaultKind::ServiceCrash {
            service: "post-storage".into(),
        },
    );

    let breaker = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 3,
        cooldown: Duration::from_secs(5),
    });
    let post_storage_ep = {
        let shim = post_shim.clone();
        Endpoint::new(
            &rt,
            Service::new(&sim, ServiceSpec::new("post-storage", EU)),
            move |post_id: u64, mut ctx: RequestCtx| {
                let shim = shim.clone();
                async move {
                    let mut lineage = ctx
                        .lineage
                        .stop()
                        .unwrap_or_else(|| antipode::Lineage::new(antipode::LineageId(post_id)));
                    shim.write(
                        EU,
                        &format!("post-{post_id}"),
                        Bytes::from_static(b"body"),
                        &mut lineage,
                    )
                    .await
                    .expect("EU configured");
                    ctx.lineage.adopt(lineage);
                    (post_id, ctx)
                }
            },
        )
        .with_timeout(Duration::from_secs(2))
        .with_retry(RetryPolicy {
            max_attempts: 3,
            jitter: 0.0,
            ..RetryPolicy::default()
        })
        .with_breaker(breaker.clone())
    };

    let sim2 = sim.clone();
    sim.block_on(async move {
        let sim = sim2;
        let gen = LineageIdGen::new(1);
        let mut ctx = RequestCtx::root(&gen);
        // Issue the request at t = 2 s, mid-crash: every attempt times out
        // and the third failure trips the breaker.
        sim.sleep(Duration::from_secs(2)).await;
        let err = post_storage_ep
            .try_call_from(US, &ctx, 1)
            .await
            .unwrap_err();
        assert_eq!(err, RpcError::Timeout { attempts: 3 });
        assert_eq!(breaker.state(), BreakerState::Open);
        // While the breaker is open, follow-up calls are shed instantly.
        let before = sim.now();
        let shed = post_storage_ep
            .try_call_from(US, &ctx, 1)
            .await
            .unwrap_err();
        assert_eq!(shed, RpcError::CircuitOpen);
        assert_eq!(sim.now(), before, "shed calls never touch the network");
        // A client-level retry loop: probes are admitted after each
        // cooldown; once the service heals one of them succeeds.
        let baggage = loop {
            sim.sleep(Duration::from_secs(3)).await;
            match post_storage_ep.try_call_from(US, &ctx, 1).await {
                Ok((_, baggage)) => break baggage,
                Err(_) => continue,
            }
        };
        assert!(
            sim.now().since(SimTime::ZERO) >= Duration::from_secs(20),
            "success only after the crash window heals"
        );
        assert_eq!(breaker.state(), BreakerState::Closed);
        ctx.absorb_response(&baggage);
        // The barrier-gated read in US observes the write: zero violations.
        let lineage = ctx.current().expect("response carried a lineage").clone();
        ap.barrier(&lineage, US).await.expect("shims registered");
        let found = post_shim
            .read(US, "post-1")
            .await
            .expect("US configured")
            .is_some();
        assert!(found, "barrier-gated read must observe the write");
    });
}

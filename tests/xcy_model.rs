//! Integration tests for the formal XCY model (paper §4, Fig 3) and its
//! agreement with executions recorded from the *simulated datastores* — the
//! checker and the system must tell the same story.

use std::rc::Rc;

use antipode_lineage::model::{Causality, Execution, ProcId, Violation};
use antipode_lineage::{Lineage, LineageId, WriteId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{MySql, Sns};
use bytes::Bytes;

/// Replays the §2.2 post-notification flow against the real simulated
/// stores, records the execution, and checks that the formal model flags a
/// violation exactly when the app-level read saw `not found`.
#[test]
fn recorded_execution_agrees_with_observed_violation() {
    for (label, wait_for_replication) in [("violating", false), ("clean", true)] {
        let sim = Sim::new(99);
        let net = Rc::new(Network::global_triangle());
        let posts = MySql::new(&sim, net.clone(), "post-storage", &[EU, US]);
        let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);
        let post_shim = KvShim::new(posts.store().clone());
        let notif_shim = QueueShim::new(notifier.queue().clone());

        // Each service interaction is recorded at that service's process:
        // post-storage and notifier are different services, and no recorder
        // sees the RPC chain between them (§3.3, "no global knowledge").
        let post_svc = ProcId(10);
        let notif_svc = ProcId(11);
        let reader = ProcId(2);
        let l_write = LineageId(1);
        let l_read = LineageId(2);

        let (exec, found) = sim.clone().block_on(async move {
            let mut exec = Execution::new();
            let mut sub = notif_shim.subscribe(US).unwrap();

            // Writer request (one lineage): write the post, notify.
            let mut lin = Lineage::new(l_write);
            let post_wid = post_shim
                .write(EU, "post-1", Bytes::from_static(b"body"), &mut lin)
                .await
                .unwrap();
            exec.write(post_svc, l_write, post_wid.clone());
            let notif_wid = notif_shim
                .publish(EU, Bytes::from_static(b"post-1"), &mut lin)
                .await
                .unwrap();
            exec.write(notif_svc, l_write, notif_wid.clone());

            // Reader request (another lineage): receive the notification…
            let _msg = sub.recv().await.unwrap().unwrap();
            exec.read(
                reader,
                l_read,
                notif_wid.datastore().to_string(),
                notif_wid.key().to_string(),
                Some(notif_wid.clone()),
            );
            if wait_for_replication {
                // (what barrier would do)
                posts
                    .store()
                    .wait_visible(US, "post-1", post_wid.version())
                    .await
                    .unwrap();
            }
            // …then read the post in the local region.
            let got = post_shim.read(US, "post-1").await.unwrap();
            let returned = got.as_ref().map(|_| post_wid.clone());
            exec.read(
                reader,
                l_read,
                "post-storage".to_string(),
                "post-1".to_string(),
                returned,
            );
            (exec, got.is_some())
        });

        let violations = exec.check(Causality::Xcy);
        if found {
            assert!(
                violations.is_empty(),
                "{label}: checker flagged a clean run: {violations:?}"
            );
        } else {
            assert_eq!(
                violations,
                vec![Violation::MissingWrite {
                    read: 3,
                    missing: 0
                }],
                "{label}: checker must flag the not-found read"
            );
            // Lamport misses it: the writes happen at different services
            // with no recorded message chain between them.
            assert!(exec.is_consistent(Causality::Lamport), "{label}");
        }
    }
}

/// Fig 3, straight from the paper: the green edge exists under ↝ but not
/// under →.
#[test]
fn fig3_distinction() {
    let mut e = Execution::new();
    let w_y = e.write(ProcId(1), LineageId(1), WriteId::new("svcA", "y", 1));
    let w_x = e.write(ProcId(4), LineageId(1), WriteId::new("svcB", "x", 1));
    let r_y = e.read(
        ProcId(3),
        LineageId(2),
        "svcA",
        "y",
        Some(WriteId::new("svcA", "y", 1)),
    );
    e.send(ProcId(3), LineageId(2), 1);
    e.recv(ProcId(2), LineageId(2), 1);
    let r_x = e.read(ProcId(2), LineageId(2), "svcB", "x", None);

    // The red dependency (both definitions): write(y) ↝ read(y).
    assert!(e.depends(w_y, r_y, Causality::Lamport));
    assert!(e.depends(w_y, r_y, Causality::Xcy));
    // The green dependency (XCY only): write(x) ↝ read(x).
    assert!(!e.depends(w_x, r_x, Causality::Lamport));
    assert!(e.depends(w_x, r_x, Causality::Xcy));
    // And therefore only XCY flags the not-found read of x.
    assert!(e.is_consistent(Causality::Lamport));
    assert!(!e.is_consistent(Causality::Xcy));
}

/// The §5.1 ACL example in the formal model: without `transfer`, ℒpost does
/// not carry the ACL write, and XCY-with-truncated-lineages accepts the bad
/// outcome; the *untruncated* model (both writes in one lineage) rejects it.
#[test]
fn acl_transfer_in_the_model() {
    let alice = ProcId(1);
    let bob_side = ProcId(2);

    // Model "with transfer" as both writes sharing the post lineage (that is
    // exactly what transfer establishes).
    for (transferred, expect_violation) in [(false, false), (true, true)] {
        let mut e = Execution::new();
        let l_block = LineageId(10);
        let l_post = LineageId(11);
        let acl_lineage = if transferred { l_post } else { l_block };
        // The ACL write, the post write, and the notification write happen
        // at three different services (three processes).
        let _w_acl = e.write(alice, acl_lineage, WriteId::new("acl", "alice-bob", 1));
        e.write(ProcId(20), l_post, WriteId::new("posts", "p1", 1));
        e.write(ProcId(21), l_post, WriteId::new("notif", "n1", 1));
        // Bob's region reads the notification, then the ACL — which has not
        // replicated yet (not found), so Bob is (wrongly) notified.
        e.read(
            bob_side,
            LineageId(12),
            "notif",
            "n1",
            Some(WriteId::new("notif", "n1", 1)),
        );
        e.read(bob_side, LineageId(12), "acl", "alice-bob", None);

        let consistent = e.is_consistent(Causality::Xcy);
        assert_eq!(
            consistent, !expect_violation,
            "transferred={transferred}: XCY consistency mismatch"
        );
    }
}

//! Speculation properties: randomized fault storms against the S3×SNS
//! speculative cell must never produce an *observed* XCY violation or leak
//! a confined write past a rollback; the same seed and fault plan must
//! reproduce the run byte for byte; and speculative barriers must diverge
//! from blocking ones by a deterministic latency margin on the S3 profile.

use std::time::Duration;

use antipode_app::speculation_cell::{run_speculation, SpecCellConfig, SpecCellResult};
use proptest::prelude::*;

/// Parameters of one randomized speculation storm — replayable from the
/// parameters alone.
#[derive(Clone, Debug)]
struct StormParams {
    seed: u64,
    /// `(start_ms, len_ms)` of the reader-side S3 replica crash.
    crash: (u64, u64),
    /// Speculation budget, ms.
    budget_ms: u64,
    /// Confirmation budget, s.
    confirm_secs: u64,
}

impl StormParams {
    fn config(&self) -> SpecCellConfig {
        let mut cfg = SpecCellConfig::speculative()
            .with_seed(self.seed)
            .with_requests(12)
            .with_chaos();
        cfg.budget = Duration::from_millis(self.budget_ms);
        cfg.confirm_budget = Duration::from_secs(self.confirm_secs);
        cfg.chaos_window = (
            Duration::from_millis(self.crash.0),
            Duration::from_millis(self.crash.0 + self.crash.1),
        );
        cfg
    }
}

fn storm() -> impl Strategy<Value = StormParams> {
    (
        any::<u64>(),
        (0u64..30_000, 20_000u64..90_000),
        100u64..2_000,
        20u64..70,
    )
        .prop_map(|(seed, crash, budget_ms, confirm_secs)| StormParams {
            seed,
            crash,
            budget_ms,
            confirm_secs,
        })
}

fn assert_invariants(r: &SpecCellResult, ctx: &StormParams) {
    assert_eq!(
        r.observed_violations, 0,
        "{ctx:?}: speculative evaluations may be unsatisfied, observed ones may not"
    );
    assert_eq!(
        r.leaked_writes, 0,
        "{ctx:?}: a discarded confined write reached the store"
    );
    assert_eq!(
        r.violations.hits(),
        0,
        "{ctx:?}: a post-commit read missed its dependency"
    );
    assert_eq!(
        r.stats.redelivered, r.stats.violated,
        "{ctx:?}: every violation must redeliver exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Zero observed XCY violations and zero leaked confined writes, for
    /// any crash window, speculation budget, and confirmation budget.
    #[test]
    fn storms_never_observe_violations_or_leak_writes(p in storm()) {
        let r = run_speculation(&p.config());
        assert_invariants(&r, &p);
    }

    /// The same seed and fault plan reproduce the run exactly: identical
    /// outcome trace, latencies, and counters.
    #[test]
    fn same_seed_and_plan_reproduce_the_run(p in storm()) {
        let a = run_speculation(&p.config());
        let b = run_speculation(&p.config());
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.handler_latency.values(), b.handler_latency.values());
        prop_assert_eq!(a.commit_latency.values(), b.commit_latency.values());
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.observed_violations, b.observed_violations);
    }
}

/// A long crash against a short confirmation budget must force rollbacks —
/// and the rollback path itself must hold the invariants.
#[test]
fn violation_storm_rolls_back_without_leaking() {
    let p = StormParams {
        seed: 0x0BAD_5EED,
        crash: (0, 90_000),
        budget_ms: 300,
        confirm_secs: 20,
    };
    let r = run_speculation(&p.config());
    assert!(
        r.stats.violated > 0,
        "a 90 s crash against a 20 s confirmation budget must violate: {:?}",
        r.stats
    );
    assert!(r.stats.rolled_back_writes > 0);
    assert_invariants(&r, &p);
}

/// The ablation the speculation plane exists for: on the S3 profile the
/// blocking p99 sits behind the heavy replication tail while the
/// speculative p99 sits at the budget — a deterministic ≥ 5× divergence.
#[test]
fn blocking_vs_speculative_latency_divergence_is_deterministic() {
    let spec = run_speculation(&SpecCellConfig::speculative().with_requests(24));
    let blocking = run_speculation(&SpecCellConfig::blocking().with_requests(24));
    let sp = spec.handler_latency.summary().expect("samples recorded");
    let bp = blocking
        .handler_latency
        .summary()
        .expect("samples recorded");
    assert!(
        bp.p99 > 5.0 * sp.p99,
        "blocking p99 {} vs speculative p99 {}",
        bp.p99,
        sp.p99
    );
    // Deterministic: the exact same divergence on a second run.
    let spec2 = run_speculation(&SpecCellConfig::speculative().with_requests(24));
    assert_eq!(
        spec.handler_latency.values(),
        spec2.handler_latency.values()
    );
}

/// Soak: 50 seeds through an aggressive storm. Run with `--ignored`.
#[test]
#[ignore = "soak — run explicitly or in the chaos-soak CI job"]
fn fifty_seed_soak() {
    for seed in 0..50u64 {
        let p = StormParams {
            seed: 0x50AC ^ (seed * 0x9E37_79B9),
            crash: (5_000 + (seed % 7) * 3_000, 30_000 + (seed % 11) * 6_000),
            budget_ms: 200 + (seed % 5) * 400,
            confirm_secs: 25 + (seed % 6) * 8,
        };
        let r = run_speculation(&p.config());
        assert_invariants(&r, &p);
    }
}

#!/usr/bin/env bash
# Runs cargo with [patch.crates-io] pointing every external dependency at
# dev/offline-stubs/, so the workspace builds and tests without network access.
# Usage: dev/offline-check.sh <cargo subcommand and args>, e.g.
#   dev/offline-check.sh build --release
#   dev/offline-check.sh test -q
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cfg=()
for crate in bytes parking_lot rand rand_chacha proptest serde serde_json criterion crossbeam; do
  cfg+=(--config "patch.crates-io.${crate}.path=\"${root}/dev/offline-stubs/${crate}\"")
done
exec cargo "${cfg[@]}" "$@"

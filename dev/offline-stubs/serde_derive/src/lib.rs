//! Offline stand-in for `serde_derive`: a hand-rolled `#[derive(Serialize)]`
//! (no `syn`/`quote`) that handles the shape every artifact struct in this
//! workspace has — a non-generic struct with named fields. It walks the raw
//! token tree to collect field names and emits an impl of the stub `serde`
//! crate's reduced `Serialize` trait ("render as a JSON value"). Anything
//! fancier (enums, tuple structs, generics, `#[serde(...)]` attributes)
//! panics at expansion time with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including expanded doc comments) and
    // the visibility, then expect `struct Name { ... }`.
    let mut name = None;
    let mut fields_group = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // `pub(crate)` etc: a paren group may follow.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde stub derive: expected struct name, got {other:?}"),
                }
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        fields_group = Some(g);
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde stub derive: generic structs are not supported")
                    }
                    other => panic!(
                        "serde stub derive: only structs with named fields are supported, \
                         got {other:?}"
                    ),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("serde stub derive: enums are not supported")
            }
            _ => {}
        }
    }
    let name = name.expect("serde stub derive: no struct found in input");
    let group = fields_group.expect("serde stub derive: no field block found");

    // Collect field names: at angle-bracket depth 0, each field is
    // `[attrs] [pub] ident : Type`, fields separated by `,`. Parens and
    // brackets arrive as single Group tokens, so only `<`/`>` need counting.
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut in_type = false;
    let mut last_ident = None;
    let mut body = group.stream().into_iter().peekable();
    while let Some(tt) = body.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' if in_type => angle_depth += 1,
                '>' if in_type => angle_depth -= 1,
                ',' if angle_depth == 0 => in_type = false,
                ':' if !in_type => {
                    // `::` cannot appear here: before a field's `:` only
                    // attributes, visibility, and the name occur.
                    fields.push(
                        last_ident
                            .take()
                            .expect("serde stub derive: field `:` with no preceding name"),
                    );
                    in_type = true;
                }
                '#' if !in_type => {
                    body.next(); // attribute group
                }
                _ => {}
            },
            TokenTree::Ident(id) if !in_type => {
                let s = id.to_string();
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            TokenTree::Group(g) if !in_type && g.delimiter() == Delimiter::Parenthesis => {
                // the group of `pub(crate)` / `pub(super)`
            }
            _ => {}
        }
    }

    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "fields.push((\"{f}\".to_string(), \
             serde::Serialize::to_json_value(&self.{f})));\n"
        ));
    }
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> serde::JsonValue {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, serde::JsonValue)> =\n\
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 serde::JsonValue::Object(fields)\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("serde stub derive: generated impl parses")
}

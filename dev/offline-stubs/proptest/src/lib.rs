//! Offline API-compatible subset of `proptest` 1.x — the `proptest!` macro,
//! range/tuple/vec strategies, and `prop_assert*` used by this workspace's
//! property tests. Generation is random (seeded per test name + case index)
//! but there is no shrinking. See `dev/offline-stubs/README.md`.

/// Per-test configuration (`cases` is the only knob in use).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub mod test_runner {
    //! The deterministic per-case RNG behind generated values.

    /// splitmix64-based generator seeded from the test path and case index.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values (no shrinking in this subset).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a constant value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_range_from_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u128).wrapping_sub(self.start as u128) + 1;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_from_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Subset of `proptest::sample`: an index drawn independently of the
/// collection it will select into.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An arbitrary position, resolved against a length via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(usize);

    impl Index {
        /// Maps this index into `0..len`. Panics if `len` is zero, matching
        /// the real crate.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies (`vec` and `btree_map` are the ones in use).

    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `Vec` of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for a `BTreeMap` with entry count drawn from `len`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: std::ops::Range<usize>,
    }

    /// `BTreeMap` of `key`/`value` pairs, roughly `len` entries (duplicate
    /// keys collapse, unlike real proptest which redraws them).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: std::ops::Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, len }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Uniform choice between boxed strategies of a common value type — what
/// [`prop_oneof!`] builds (real proptest's weighted `TupleUnion` is not
/// reproduced; the workspace only uses the unweighted form).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A strategy drawing uniformly from `options`.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() as usize) % self.options.len();
        self.options[idx].generate(rng)
    }
}

/// Picks uniformly among the given strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(options.push(::std::boxed::Box::new($strategy));)+
        $crate::Union::new(options)
    }};
}

mod string_pattern {
    //! Generator for the regex-subset string strategies (`"[a-z]{1,8}"` …).
    //!
    //! Supports exactly what the workspace's patterns need: literal
    //! characters, `\`-escapes, `[...]` classes with ranges and trailing
    //! `-`, the `\PC` printable-character class, and `{n}` / `{n,m}` /
    //! `*` / `+` / `?` quantifiers. Anything fancier is out of scope.

    use super::test_runner::TestRng;

    /// One pattern atom: an alphabet plus a repetition range.
    struct Atom {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    /// `\PC` ("not a control character"): printable ASCII plus a few
    /// multi-byte scalars so UTF-8 handling gets exercised.
    fn printable_alphabet() -> Vec<char> {
        let mut set: Vec<char> = (0x20u32..=0x7E).filter_map(char::from_u32).collect();
        set.extend(['é', 'λ', '→', '—', '🦀']);
        set
    }

    fn parse(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            for v in c as u32..=chars[i + 2] as u32 {
                                if let Some(ch) = char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(c);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated character class in {pattern:?}");
                    i += 1; // skip ']'
                    set
                }
                '\\' => {
                    if i + 2 < chars.len()
                        && (chars[i + 1] == 'P' || chars[i + 1] == 'p')
                        && chars[i + 2] == 'C'
                    {
                        i += 3;
                        printable_alphabet()
                    } else {
                        assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                        i += 1;
                        let c = chars[i];
                        i += 1;
                        vec![c]
                    }
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let mut j = i + 1;
                    let mut lo = 0usize;
                    while chars[j].is_ascii_digit() {
                        lo = lo * 10 + chars[j].to_digit(10).unwrap() as usize;
                        j += 1;
                    }
                    let hi = if chars[j] == ',' {
                        j += 1;
                        let mut h = 0usize;
                        while chars[j].is_ascii_digit() {
                            h = h * 10 + chars[j].to_digit(10).unwrap() as usize;
                            j += 1;
                        }
                        h
                    } else {
                        lo
                    };
                    assert_eq!(chars[j], '}', "malformed quantifier in {pattern:?}");
                    i = j + 1;
                    (lo, hi)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            assert!(!alphabet.is_empty(), "empty alphabet in {pattern:?}");
            atoms.push(Atom { alphabet, min, max });
        }
        atoms
    }

    pub(super) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pattern) {
            let span = (atom.max - atom.min + 1) as u64;
            let reps = atom.min + (rng.next_u64() % span) as usize;
            for _ in 0..reps {
                let idx = (rng.next_u64() as usize) % atom.alphabet.len();
                out.push(atom.alphabet[idx]);
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string_pattern::generate(self, rng)
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}: {e}");
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

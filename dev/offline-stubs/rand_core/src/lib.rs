//! Offline API-compatible subset of `rand_core` 0.9 — just enough surface for
//! this workspace to build and test without network access. See
//! `dev/offline-stubs/README.md`.

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized, T: core::ops::DerefMut<Target = R>> RngCore for T {
    fn next_u32(&mut self) -> u32 {
        self.deref_mut().next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.deref_mut().next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.deref_mut().fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, spread over the full seed via splitmix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for b in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = b.len();
            b.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

//! Offline API-compatible subset of `criterion` 0.5 — enough to build and
//! run this workspace's `harness = false` benches without the network:
//! `Criterion`, `benchmark_group`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`, and a `Bencher`
//! that reports a mean ns/iter. No statistics, plots, or saved baselines —
//! a smoke-quality timer, not a replacement for real criterion runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for convenience; benches normally use `std::hint::black_box`.
pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            elements: None,
        }
    }
}

/// A benchmark group (a name prefix in this stub).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    elements: Option<u64>,
}

/// Per-iteration throughput declaration, mirroring criterion 0.5.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes per iteration, reported in decimal multiples.
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted and ignored in this stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput. The stub records the element
    /// count so per-element times can be printed alongside ns/iter.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.elements = match throughput {
            Throughput::Elements(n) => Some(n),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => Some(n),
        };
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_group_one(&format!("{}/{}", self.name, name), self.elements, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_group_one(&format!("{}/{}", self.name, id.label), self.elements, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in this stub).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly (3 warm-up calls, then ≥10 timed iterations or
    /// ~50 ms, whichever is more) and records the mean.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(50);
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < 10 || start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    /// Runs `f` with an iteration count and trusts its returned duration —
    /// for workloads that time themselves (criterion's `iter_custom`). One
    /// warm-up call, then ≥3 timed batches or ~50 ms, whichever is more.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        black_box(f(1));
        let budget = Duration::from_millis(50);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while iters < 3 || total < budget {
            total += f(1);
            iters += 1;
        }
        self.total = total;
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    run_group_one(name, None, f)
}

fn run_group_one<F: FnMut(&mut Bencher)>(name: &str, elements: Option<u64>, f: &mut F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let ns = b.total.as_nanos() as f64 / b.iters as f64;
        match elements {
            Some(n) if n > 0 => println!(
                "{name:<50} {ns:>12.1} ns/iter ({} iters, {:.1} ns/elem)",
                b.iters,
                ns / n as f64
            ),
            _ => println!("{name:<50} {ns:>12.1} ns/iter ({} iters)", b.iters),
        }
    } else {
        println!("{name:<50} (no iterations recorded)");
    }
}

/// Bundles benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

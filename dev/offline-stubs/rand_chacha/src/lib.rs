//! Offline API-compatible subset of `rand_chacha` 0.9 with a genuine ChaCha12
//! keystream generator. Stream positions are NOT guaranteed to match the
//! upstream crate bit-for-bit — the workspace only relies on determinism for a
//! given seed, which this provides. See `dev/offline-stubs/README.md`.

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// A deterministic RNG driven by the ChaCha stream cipher with 12 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    index: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the (zero) nonce.
        let mut w = state;
        for _ in 0..6 {
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (mixed, orig)) in self.buf.iter_mut().zip(w.iter().zip(state.iter())) {
            *out = mixed.wrapping_add(*orig);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha12Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::from_seed([7; 32]);
        let mut b = ChaCha12Rng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::from_seed([1; 32]);
        let mut b = ChaCha12Rng::from_seed([2; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

//! Offline placeholder — resolves the dependency graph without the network; never compiled by tier-1 targets.

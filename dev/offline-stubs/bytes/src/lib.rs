//! Offline API-compatible subset of `bytes` 1.x: a reference-counted `Bytes`
//! with cheap slicing, plus the `Buf`/`BufMut` trait surface the lineage codec
//! uses. See `dev/offline-stubs/README.md`.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Backing storage: shared heap bytes, or a borrowed `'static` slice
/// (no allocation — `from_static` is free, as in the real crate).
#[derive(Clone)]
enum Repr {
    Shared(Arc<[u8]>),
    Static(&'static [u8]),
}

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::from_static(&[])
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies a slice into a new buffer (one allocation, one copy).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Repr::Shared(Arc::from(data)),
            start: 0,
            end: data.len(),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of this buffer sharing the underlying storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        let whole: &[u8] = match &self.data {
            Repr::Shared(arc) => arc,
            Repr::Static(s) => s,
        };
        &whole[self.start..self.end]
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data: Repr::Shared(data),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read access to a sequence of bytes (the subset of `bytes::Buf` in use).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Current contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes and returns one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consumes `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end");
        let mut off = 0;
        while off < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - off);
            dst[off..off + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            off += n;
        }
    }

    /// Consumes `len` bytes, returning them as a `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte sink (the subset of `bytes::BufMut` in use).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, b: u8) {
        (**self).put_u8(b)
    }
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn buf_round_trip() {
        let mut v = Vec::new();
        v.put_u8(7);
        v.put_slice(&[8, 9]);
        let mut b = Bytes::from(v);
        assert_eq!(b.get_u8(), 7);
        let rest = b.copy_to_bytes(2);
        assert_eq!(&rest[..], &[8, 9]);
        assert!(!b.has_remaining());
    }
}

//! Offline API-compatible subset of `parking_lot` 0.12: a `Mutex` that
//! recovers from poisoning, matching parking_lot's panic-transparent
//! behaviour. See `dev/offline-stubs/README.md`.

use std::sync::Mutex as StdMutex;
pub use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

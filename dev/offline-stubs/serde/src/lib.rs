//! Offline API-compatible subset of `serde` — a `Serialize` trait reduced to
//! "render yourself as a JSON value" plus the `#[derive(Serialize)]` macro
//! (from the sibling `serde_derive` stub). Enough for the workspace's
//! artifact writers (`serde_json::to_string_pretty` over plain structs of
//! numbers, strings, vectors, tuples, and nested structs). The JSON model
//! lives here so the `serde_json` stub can share it.

pub use serde_derive::Serialize;

/// A JSON value. Object fields keep declaration order (the derive pushes
/// them in struct order), matching what real `serde_json` emits for derived
/// structs.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

/// Types that can render themselves as JSON (this stub's reduction of
/// serde's data model — sufficient for artifact serialization).
pub trait Serialize {
    /// The JSON form of `self`.
    fn to_json_value(&self) -> JsonValue;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue { JsonValue::UInt(*self as u64) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue { JsonValue::Int(*self as i64) }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            None => JsonValue::Null,
            Some(v) => v.to_json_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

//! Offline API-compatible subset of `rand` 0.9 — the `Rng` extension trait
//! surface this workspace actually uses (`random`, `random_range`) over any
//! `RngCore`. See `dev/offline-stubs/README.md`.

pub use rand_core::{RngCore, SeedableRng};

/// Types producible uniformly from raw random bits (stand-in for
/// `StandardUniform: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a bounded range (stand-in for
/// `rand::distr::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                assert!(span != 0, "empty range");
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(lo < hi, "empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Ranges samplable via `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Extension methods over any `RngCore` (the subset of `rand::Rng` in use).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::rngs` stand-in.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(1..100);
            assert!((1..100).contains(&v));
            let f: f64 = rng.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }
}

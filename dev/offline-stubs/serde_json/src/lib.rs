//! Offline API-compatible subset of `serde_json`: `to_string` /
//! `to_string_pretty` over the stub `serde` crate's reduced `Serialize`
//! trait. Output is valid JSON with 2-space pretty indentation; float
//! formatting follows Rust's shortest-round-trip `Display` (real serde_json
//! prints `1.0` where this prints `1` — consumers of the artifacts parse
//! either).

use serde::{JsonValue, Serialize};

/// Serialization error. The stub's rendering is infallible, but the type
/// keeps call sites (`match to_string_pretty(..) { Err(e) => ... }`)
/// compiling unchanged.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}
impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty JSON, 2-space indent.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &JsonValue, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::UInt(n) => out.push_str(&n.to_string()),
        JsonValue::Int(n) => out.push_str(&n.to_string()),
        JsonValue::Float(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // Real serde_json errors on non-finite floats; the artifacts
                // never contain them, but render `null` defensively.
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => escape_into(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        JsonValue::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
